//! Adaptive invariant selection: the paper's §V findings as a cost model.
//!
//! Section V reports that the fastest member of the eight-algorithm family
//! is predicted by graph shape: partition the vertex set whose *opposite*
//! side does the least wedge work, and (in the paper's measurements)
//! prefer the look-ahead members. The partition rule reproduces here; the
//! look-ahead preference does not (EXPERIMENTS.md, E2 — the A₀-readers
//! are consistently faster in this implementation), so the cost model
//! keeps the paper's side rule and follows our own measurements within a
//! side. Instead of making the caller hand-pick an invariant, this module
//!
//! 1. computes a cheap [`GraphProfile`] — side sizes, degree extrema, the
//!    `Σ C(deg, 2)` wedge-work estimate per side, and degree skew — in one
//!    pass over the two CSR/CSC degree arrays;
//! 2. runs a cost model ([`select_invariant`] / [`select_plan`]) that picks
//!    the partition side, traversal direction, look-ahead vs. look-behind,
//!    blocked vs. flat execution, and (for parallel runs) degree-balanced
//!    chunk boundaries instead of equal vertex ranges; and
//! 3. optionally renumbers the partitioned side by descending degree
//!    before counting ([`Plan::degree_ordered`]) — the ordering heuristic
//!    of Wang et al. (VLDB'19) and ParButterfly's ranking phase — mapping
//!    per-vertex results back through the permutation afterwards.
//!
//! The whole decision is recorded in telemetry (`select` span plus
//! `plan.*` gauges), so `bfly report diff` can gate on it and
//! `bfly count --explain` can print it.
//!
//! The wedge-work estimate is exact, not heuristic: a full run of any
//! family member that partitions side `P` expands exactly
//! `Σ_{j ∈ other(P)} C(deg(j), 2)` wedges (each unordered pair of
//! partitioned-side vertices sharing the opposite-side neighbour `j` is
//! expanded once, whichever of `A₀`/`A₂` the update reads). The property
//! tests pin this identity against the `wedges_expanded` counter.

use crate::budget::{record_degraded, record_memory, Partial, ResourceBudget};
use crate::error::BflyError;
use crate::family::{
    count_blocked_recorded, count_partitioned_checked_recorded,
    count_partitioned_parallel_balanced_recorded, count_priority_checked_deadline,
    count_priority_parallel_recorded, count_priority_recorded, count_ranked_checked_deadline,
    count_ranked_parallel_recorded, count_ranked_recorded, count_recorded, priority_wedge_work,
    Invariant, RANKED_BUCKET_WEDGES,
};
use bfly_graph::ordering::{degree_descending, relabel};
use bfly_graph::{BipartiteGraph, Side};
use bfly_sparse::{choose2, CheckedAccum};
use bfly_telemetry::{timed_span, Counter, Json, NoopRecorder, Recorder, WorkForecast};
use std::time::Instant;

/// Structural profile of a bipartite graph — everything the cost model
/// reads. Cheap: one pass over the two degree arrays for the side terms,
/// plus one degree sort and one edge pass for the exact vertex-priority
/// work term (still far below the counting work it predicts).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphProfile {
    /// `|V1|` (rows of `A`).
    pub nv1: usize,
    /// `|V2|` (columns of `A`).
    pub nv2: usize,
    /// `|E|`.
    pub nedges: usize,
    /// Maximum degree on V1.
    pub max_deg_v1: usize,
    /// Maximum degree on V2.
    pub max_deg_v2: usize,
    /// `Σ_{u ∈ V1} C(deg(u), 2)` — the wedge work of partitioning **V2**
    /// (invariants 1–4 expand their wedges through V1 vertices).
    pub wedges_v1: u64,
    /// `Σ_{v ∈ V2} C(deg(v), 2)` — the wedge work of partitioning **V1**.
    pub wedges_v2: u64,
    /// Exact wedge work of the vertex-priority kernel under the global
    /// degree-descending order: `Σ_j [C(deg j, 2) − C(g_j, 2)]` where
    /// `g_j` counts the strictly-lower-priority neighbours of `j`
    /// ([`priority_wedge_work`]). *Not* bounded by
    /// `min(wedges_v1, wedges_v2)` in general — on near-uniform graphs it
    /// can exceed the best fixed side by up to ~30% — which is why
    /// [`select_plan`] gates the priority member on this measured value
    /// rather than assuming an advantage.
    pub wedges_priority: u64,
    /// Degree skew of V1: `max_deg_v1 / mean_deg_v1` (0 when edgeless).
    pub skew_v1: f64,
    /// Degree skew of V2: `max_deg_v2 / mean_deg_v2` (0 when edgeless).
    pub skew_v2: f64,
    /// Estimated heap bytes of the materialized CSR/CSC pair itself
    /// ([`graph_resident_bytes`]) — what an in-memory plan must keep
    /// resident before any scratch is allocated. A byte budget below this
    /// makes "doesn't fit" a *planned* condition: [`select_plan_budgeted`]
    /// selects the sharded tier outright instead of degrading scratch.
    pub resident_bytes: u64,
}

/// Estimated heap bytes of holding a graph of the given shape in memory
/// as a [`BipartiteGraph`]: both CSR orientations' column indices plus
/// the two row-pointer arrays (matching
/// [`SegmentedGraph::resident_bytes`](bfly_graph::SegmentedGraph::resident_bytes),
/// so on-disk and in-memory profiles agree on the number).
pub fn graph_resident_bytes(nv1: usize, nv2: usize, nedges: usize) -> u64 {
    2 * (4 * nedges as u64 + 8 * (nv1 + nv2 + 2) as u64)
}

impl GraphProfile {
    /// Profile `g` in one pass over each side's degree array.
    pub fn compute(g: &BipartiteGraph) -> GraphProfile {
        let (nv1, nv2) = (g.nv1(), g.nv2());
        // Saturating sums: the profile is a cost *estimate*, and a graph
        // whose wedge volume exceeds u64 should still profile (and then
        // fail the work budget or overflow check downstream) rather than
        // wrap to a tiny bogus estimate in release builds.
        let mut max_deg_v1 = 0usize;
        let mut wedges_v1 = 0u64;
        for u in 0..nv1 {
            let d = g.deg_v1(u);
            max_deg_v1 = max_deg_v1.max(d);
            wedges_v1 = wedges_v1.saturating_add(choose2(d as u64));
        }
        let mut max_deg_v2 = 0usize;
        let mut wedges_v2 = 0u64;
        for v in 0..nv2 {
            let d = g.deg_v2(v);
            max_deg_v2 = max_deg_v2.max(d);
            wedges_v2 = wedges_v2.saturating_add(choose2(d as u64));
        }
        let nedges = g.nedges();
        let skew = |max_deg: usize, count: usize| {
            if nedges == 0 || count == 0 {
                0.0
            } else {
                max_deg as f64 * count as f64 / nedges as f64
            }
        };
        GraphProfile {
            nv1,
            nv2,
            nedges,
            max_deg_v1,
            max_deg_v2,
            wedges_v1,
            wedges_v2,
            wedges_priority: priority_wedge_work(g),
            skew_v1: skew(max_deg_v1, nv1),
            skew_v2: skew(max_deg_v2, nv2),
            resident_bytes: graph_resident_bytes(nv1, nv2, nedges),
        }
    }

    /// Exact wedge work of a full family run that partitions `side`
    /// (wedges are expanded through the *other* side's vertices).
    pub fn partition_cost(&self, side: Side) -> u64 {
        match side {
            Side::V1 => self.wedges_v2,
            Side::V2 => self.wedges_v1,
        }
    }

    /// Degree skew of the given side.
    pub fn skew(&self, side: Side) -> f64 {
        match side {
            Side::V1 => self.skew_v1,
            Side::V2 => self.skew_v2,
        }
    }

    /// Render as a JSON object (the `--explain` payload).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("nv1".into(), Json::UInt(self.nv1 as u64)),
            ("nv2".into(), Json::UInt(self.nv2 as u64)),
            ("nedges".into(), Json::UInt(self.nedges as u64)),
            ("max_deg_v1".into(), Json::UInt(self.max_deg_v1 as u64)),
            ("max_deg_v2".into(), Json::UInt(self.max_deg_v2 as u64)),
            ("wedges_v1".into(), Json::UInt(self.wedges_v1)),
            ("wedges_v2".into(), Json::UInt(self.wedges_v2)),
            ("wedges_priority".into(), Json::UInt(self.wedges_priority)),
            ("skew_v1".into(), Json::Float(self.skew_v1)),
            ("skew_v2".into(), Json::Float(self.skew_v2)),
            ("resident_bytes".into(), Json::UInt(self.resident_bytes)),
        ])
    }
}

/// How the selected invariant is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The plain sequential loop of [`crate::family::count`].
    Flat,
    /// The cache-blocked sibling ([`crate::family::count_blocked`]).
    Blocked {
        /// Columns/rows exposed per block.
        block_size: usize,
    },
    /// Rayon-parallel with degree-balanced chunk boundaries
    /// ([`crate::family::count_partitioned_parallel_balanced`]).
    Parallel {
        /// Number of work chunks (normally the worker count).
        chunks: usize,
    },
    /// Shard-by-vertex-range execution ([`crate::family::count_sharded`]):
    /// wedge-balanced contiguous shards of the partitioned side counted
    /// independently and merged exactly — the out-of-core tier, selected
    /// when the byte budget cannot hold the resident graph. On a `.bfly`
    /// input only the metadata, one shard, and one accumulator are ever
    /// resident.
    Sharded {
        /// Number of vertex-range shards.
        shards: usize,
    },
}

/// Which counting engine a [`Plan`] runs: one of the paper's eight fixed
/// invariants, or one of the global-order kernels that supersede them on
/// sufficiently skewed graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Member {
    /// A fixed invariant of the paper's family (partition one side,
    /// expand every wedge through the other).
    Fixed(Invariant),
    /// The vertex-priority kernel ([`crate::family::count_priority`]):
    /// global degree-descending order over `V1 ∪ V2`, each wedge expanded
    /// only from its strictly-highest-priority endpoint.
    Priority,
    /// Ranked wedge aggregation ([`crate::family::count_ranked`]): the
    /// priority wedge set processed in rank order through weight-balanced
    /// buckets of flat SPA batches.
    Ranked,
}

impl Member {
    /// Short lowercase name (the `--explain` / gauge vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            Member::Fixed(_) => "fixed",
            Member::Priority => "priority",
            Member::Ranked => "ranked",
        }
    }

    /// Stable numeric encoding for the `plan.member` gauge.
    pub fn gauge_value(&self) -> f64 {
        match self {
            Member::Fixed(_) => 0.0,
            Member::Priority => 1.0,
            Member::Ranked => 2.0,
        }
    }
}

/// The cost model's full decision for one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The engine that runs: a fixed invariant, or a global-order kernel.
    /// When this is [`Member::Priority`] / [`Member::Ranked`], `invariant`
    /// still names the best *fixed* member — the budget degradation
    /// fallback and the `est_work_alt` baseline.
    pub member: Member,
    /// The best fixed family member (fixes partition side, traversal
    /// direction, and `A₀` vs. `A₂`). Authoritative only when `member`
    /// is [`Member::Fixed`]; otherwise the fallback.
    pub invariant: Invariant,
    /// Renumber the partitioned side by descending degree first.
    pub degree_ordered: bool,
    /// Flat, blocked, or parallel execution.
    pub mode: ExecMode,
    /// Exact wedge work of the chosen engine: the chosen partition side's
    /// `Σ C(deg, 2)` for a fixed member, [`GraphProfile::wedges_priority`]
    /// for the priority/ranked members.
    pub est_work: u64,
    /// Wedge work of the rejected alternative: the other side for a fixed
    /// member, the best fixed side for priority/ranked.
    pub est_work_alt: u64,
}

impl Plan {
    /// The vertex set the plan partitions.
    pub fn partition_side(&self) -> Side {
        self.invariant.partitioned_side()
    }

    /// Predicted total work for liveness monitoring: counting plans
    /// forecast the `wedges_expanded` counter *exactly*, so
    /// `progress.fraction` ends at exactly 1.0 on a completed run and
    /// can never overshoot. For a fixed member `est_work` is the chosen
    /// side's Σ C(deg, 2); for the priority and ranked members it is the
    /// closed-form [`priority_wedge_work`] total — both kernels expand
    /// exactly that many wedges (pinned by their unit tests), so the
    /// per-member forecast stays exact rather than reusing the one-side
    /// formula the fixed members use.
    pub fn forecast(&self) -> WorkForecast {
        WorkForecast::new(Counter::WedgesExpanded, self.est_work)
    }

    /// Render as a JSON object (the `--explain` payload).
    pub fn to_json(&self) -> Json {
        let (mode, block_size, chunks, shards) = match self.mode {
            ExecMode::Flat => ("flat", 0u64, 0u64, 0u64),
            ExecMode::Blocked { block_size } => ("blocked", block_size as u64, 0, 0),
            ExecMode::Parallel { chunks } => ("parallel", 0, chunks as u64, 0),
            ExecMode::Sharded { shards } => ("sharded", 0, 0, shards as u64),
        };
        Json::Obj(vec![
            ("member".into(), Json::Str(self.member.name().into())),
            (
                "invariant".into(),
                Json::UInt(self.invariant.number() as u64),
            ),
            (
                "partition_side".into(),
                Json::Str(format!("{:?}", self.partition_side())),
            ),
            (
                "lookahead".into(),
                Json::Bool(self.invariant.is_lookahead()),
            ),
            ("degree_ordered".into(), Json::Bool(self.degree_ordered)),
            ("mode".into(), Json::Str(mode.into())),
            ("block_size".into(), Json::UInt(block_size)),
            ("chunks".into(), Json::UInt(chunks)),
            ("shards".into(), Json::UInt(shards)),
            ("est_work".into(), Json::UInt(self.est_work)),
            ("est_work_alt".into(), Json::UInt(self.est_work_alt)),
        ])
    }
}

/// Degree skew of the partitioned side past which the plan renumbers it
/// by descending degree (concentrating the heavy accumulator rows early,
/// the locality effect degree ordering buys).
pub const DEGREE_ORDER_SKEW_THRESHOLD: f64 = 8.0;

/// Minimum wedge work *per edge* before degree ordering is worth the
/// relabel: renumbering is a sort plus a CSR/CSC rebuild — a few passes
/// over the edge list — so it only pays once the counting loop does far
/// more work than the rebuild (measured ~30% overhead on the stand-in
/// datasets when applied unconditionally).
pub const DEGREE_ORDER_MIN_WORK_PER_EDGE: u64 = 256;

/// Partitioned-side size past which the sequential plan switches to the
/// blocked kernel for cache locality.
pub const BLOCKED_MIN_PARTITION: usize = 1 << 16;

/// Block size used when the plan goes blocked.
pub const DEFAULT_BLOCK_SIZE: usize = 4096;

/// Best-fixed-side wedge-work floor below which the global-order members
/// are never selected: the priority rank sort plus the extra edge pass
/// cost more than they can save on tiny inputs.
pub const PRIORITY_MIN_WORK: u64 = 1 << 10;

/// Fraction of the best fixed side's work the priority wedge total must
/// undercut before a global-order member is selected. The margin absorbs
/// the rank-sort overhead and the slightly worse locality of combined
/// `V1 ∪ V2` iteration; measured on the stand-in generators, strongly
/// skewed graphs land at 0.75–0.86 (selected) while near-uniform graphs
/// land at 1.0–1.3 (rejected).
pub const PRIORITY_ADVANTAGE: f64 = 0.9;

/// Sequential selection: [`select_plan`] with `parallel = false`.
pub fn select_invariant(profile: &GraphProfile) -> Plan {
    select_plan(profile, false, 0)
}

/// The cost model. Chooses:
///
/// * **partition side** — the side whose opposite does less wedge work
///   (`Σ C(deg, 2)` over the non-partitioned side is the *exact* inner-loop
///   volume), ties broken toward the smaller side per the paper's rule;
/// * **invariant** — the forward *processed-prefix* member of the chosen
///   side (Inv. 1 / Inv. 5). The paper's §V prefers the look-ahead
///   members, but that finding does not reproduce in this implementation:
///   the A₀-readers run ~5–25% faster here (EXPERIMENTS.md, E2), so the
///   cost model follows the measurement. Conveniently these are also the
///   members the blocked kernel realises, so blocked and flat plans name
///   the same invariant;
/// * **degree ordering** — renumber the partitioned side by descending
///   degree when its skew crosses [`DEGREE_ORDER_SKEW_THRESHOLD`] *and*
///   the wedge work is at least [`DEGREE_ORDER_MIN_WORK_PER_EDGE`] times
///   the edge count (otherwise the relabel costs more than it saves);
/// * **mode** — parallel (degree-balanced chunks, one per worker) when
///   requested, else blocked when the partitioned side exceeds
///   [`BLOCKED_MIN_PARTITION`], else flat;
/// * **member** — when the exact priority wedge total
///   ([`GraphProfile::wedges_priority`]) undercuts the best fixed side by
///   [`PRIORITY_ADVANTAGE`] and that side clears [`PRIORITY_MIN_WORK`],
///   the plan runs a global-order kernel instead of the fixed invariant:
///   [`Member::Ranked`] when parallel, [`Member::Priority`] otherwise.
///   `est_work` then becomes the priority total (keeping
///   [`Plan::forecast`] exact) and `est_work_alt` the fixed side it beat.
pub fn select_plan(profile: &GraphProfile, parallel: bool, workers: usize) -> Plan {
    let cost_v2 = profile.partition_cost(Side::V2);
    let cost_v1 = profile.partition_cost(Side::V1);
    let side = if cost_v2 != cost_v1 {
        if cost_v2 < cost_v1 {
            Side::V2
        } else {
            Side::V1
        }
    } else if profile.nv2 <= profile.nv1 {
        Side::V2
    } else {
        Side::V1
    };
    let (est_work, est_work_alt) = match side {
        Side::V2 => (cost_v2, cost_v1),
        Side::V1 => (cost_v1, cost_v2),
    };
    let partition_len = match side {
        Side::V1 => profile.nv1,
        Side::V2 => profile.nv2,
    };
    let mode = if parallel {
        ExecMode::Parallel {
            chunks: workers.max(1),
        }
    } else if partition_len >= BLOCKED_MIN_PARTITION {
        ExecMode::Blocked {
            block_size: DEFAULT_BLOCK_SIZE,
        }
    } else {
        ExecMode::Flat
    };
    let invariant = match side {
        Side::V2 => Invariant::Inv1,
        Side::V1 => Invariant::Inv5,
    };
    let degree_ordered = profile.skew(side) >= DEGREE_ORDER_SKEW_THRESHOLD
        && est_work >= DEGREE_ORDER_MIN_WORK_PER_EDGE * profile.nedges as u64;
    // Global-order members: selected only when the *measured* priority
    // wedge total undercuts the best fixed side by the advantage margin
    // (the relation is regime-dependent — near-uniform graphs invert it,
    // so the gate compares, never assumes). Ranked is the parallel shape
    // (bucketed batches feed `balanced_chunk_bounds`), priority the
    // sequential one; degree ordering is superseded by the global rank.
    let advantage = (profile.wedges_priority as u128) * 10 < (est_work as u128) * 9;
    debug_assert_eq!(PRIORITY_ADVANTAGE, 0.9, "gate arithmetic hard-codes 9/10");
    if advantage && est_work >= PRIORITY_MIN_WORK {
        return Plan {
            member: if parallel {
                Member::Ranked
            } else {
                Member::Priority
            },
            invariant,
            degree_ordered: false,
            mode: if parallel {
                ExecMode::Parallel {
                    chunks: workers.max(1),
                }
            } else {
                ExecMode::Flat
            },
            est_work: profile.wedges_priority,
            est_work_alt: est_work,
        };
    }
    Plan {
        member: Member::Fixed(invariant),
        invariant,
        degree_ordered,
        mode,
        est_work,
        est_work_alt,
    }
}

/// Wedge-work floor below which a peel decomposition stays sequential:
/// the frontier-parallel engine pays a join (delta merge plus, with the
/// vendored rayon shim, a thread handoff) per large round, which only
/// amortises once the repair kernels have real work to split.
pub const PEEL_PARALLEL_MIN_WORK: u64 = 1 << 14;

/// The cost model's decision for one peeling run — which side to tip-peel
/// and whether the bucket engine chunks its frontiers.
#[derive(Debug, Clone, PartialEq)]
pub struct PeelPlan {
    /// The side whose decomposition does less wedge work (tip peeling
    /// wedge-expands removed vertices through the *other* side).
    pub side: Side,
    /// Chunk each large frontier over rayon workers.
    pub parallel: bool,
    /// Number of frontier chunks when parallel (normally the worker
    /// count; `1` otherwise).
    pub chunks: usize,
    /// Exact wedge work of the chosen side's repair kernels.
    pub est_work: u64,
    /// Wedge work the rejected side would have done.
    pub est_work_alt: u64,
}

impl PeelPlan {
    /// Predicted total work for liveness monitoring: peel plans
    /// forecast the `supports_recomputed` counter from the wedge-work
    /// *estimate* of the repair kernels — approximate (peeling repairs
    /// only surviving wedges), so the progress model clamps and the
    /// monitor snaps to 1.0 on completion.
    pub fn forecast(&self) -> WorkForecast {
        WorkForecast::new(Counter::SupportsRecomputed, self.est_work)
    }

    /// Render as a JSON object (the `--explain` payload).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("side".into(), Json::Str(format!("{:?}", self.side))),
            ("parallel".into(), Json::Bool(self.parallel)),
            ("chunks".into(), Json::UInt(self.chunks as u64)),
            ("est_work".into(), Json::UInt(self.est_work)),
            ("est_work_alt".into(), Json::UInt(self.est_work_alt)),
        ])
    }
}

/// Peel-mode selection, sharing the counting model's side rule: peel the
/// side whose opposite does less wedge work (the repair kernel expands
/// exactly the counting engine's wedges), ties toward the smaller side;
/// go parallel when `workers > 1` and the wedge work clears
/// [`PEEL_PARALLEL_MIN_WORK`] (below it the per-round join dominates).
pub fn select_peel_plan(profile: &GraphProfile, workers: usize) -> PeelPlan {
    let cost_v2 = profile.partition_cost(Side::V2);
    let cost_v1 = profile.partition_cost(Side::V1);
    let side = if cost_v2 != cost_v1 {
        if cost_v2 < cost_v1 {
            Side::V2
        } else {
            Side::V1
        }
    } else if profile.nv2 <= profile.nv1 {
        Side::V2
    } else {
        Side::V1
    };
    let (est_work, est_work_alt) = match side {
        Side::V2 => (cost_v2, cost_v1),
        Side::V1 => (cost_v1, cost_v2),
    };
    let parallel = workers > 1 && est_work >= PEEL_PARALLEL_MIN_WORK;
    PeelPlan {
        side,
        parallel,
        chunks: if parallel { workers } else { 1 },
        est_work,
        est_work_alt,
    }
}

/// Profile `g` and select a peel plan, recording the decision inside a
/// `select` span with `peel.*` gauges (the peeling counterpart of
/// [`profile_and_plan_recorded`]).
pub fn profile_and_peel_plan_recorded<R: Recorder>(
    g: &BipartiteGraph,
    workers: usize,
    rec: &mut R,
) -> (GraphProfile, PeelPlan) {
    timed_span(rec, "select", |rec| {
        let profile = GraphProfile::compute(g);
        let plan = select_peel_plan(&profile, workers);
        if R::ENABLED {
            rec.gauge(
                "peel.side",
                match plan.side {
                    Side::V1 => 1.0,
                    Side::V2 => 2.0,
                },
            );
            rec.gauge("peel.parallel", if plan.parallel { 1.0 } else { 0.0 });
            rec.gauge("peel.chunks", plan.chunks as f64);
            rec.gauge("peel.est_work", plan.est_work as f64);
            rec.gauge("peel.est_work_alt", plan.est_work_alt as f64);
            rec.gauge("progress.total_work", plan.forecast().total as f64);
        }
        (profile, plan)
    })
}

/// Profile `g` and select a plan, recording the decision: the work happens
/// inside a `select` span and the choice lands in `plan.*` gauges so
/// saved reports carry it.
pub fn profile_and_plan_recorded<R: Recorder>(
    g: &BipartiteGraph,
    parallel: bool,
    workers: usize,
    rec: &mut R,
) -> (GraphProfile, Plan) {
    timed_span(rec, "select", |rec| {
        let profile = GraphProfile::compute(g);
        let plan = select_plan(&profile, parallel, workers);
        record_plan_gauges(rec, &plan);
        (profile, plan)
    })
}

/// Emit the `plan.*` gauges describing a selected plan.
pub(crate) fn record_plan_gauges<R: Recorder>(rec: &mut R, plan: &Plan) {
    if !R::ENABLED {
        return;
    }
    rec.gauge("plan.member", plan.member.gauge_value());
    rec.gauge("plan.invariant", plan.invariant.number() as f64);
    rec.gauge(
        "plan.partition_side",
        match plan.partition_side() {
            Side::V1 => 1.0,
            Side::V2 => 2.0,
        },
    );
    rec.gauge(
        "plan.lookahead",
        if plan.invariant.is_lookahead() {
            1.0
        } else {
            0.0
        },
    );
    rec.gauge(
        "plan.degree_ordered",
        if plan.degree_ordered { 1.0 } else { 0.0 },
    );
    let (blocked, block_size, chunks, shards) = match plan.mode {
        ExecMode::Flat => (0.0, 0.0, 0.0, 0.0),
        ExecMode::Blocked { block_size } => (1.0, block_size as f64, 0.0, 0.0),
        ExecMode::Parallel { chunks } => (0.0, 0.0, chunks as f64, 0.0),
        ExecMode::Sharded { shards } => (0.0, 0.0, 0.0, shards as f64),
    };
    rec.gauge("plan.blocked", blocked);
    rec.gauge("plan.block_size", block_size);
    rec.gauge("plan.par_chunks", chunks);
    rec.gauge("plan.shards", shards);
    rec.gauge("plan.est_work", plan.est_work as f64);
    rec.gauge("plan.est_work_alt", plan.est_work_alt as f64);
    // Liveness: the forecast total the monitor seeds its ProgressModel
    // with, visible in reports even when no monitor ran.
    rec.gauge("progress.total_work", plan.forecast().total as f64);
}

/// Execute a previously selected plan on `g`.
pub fn execute_plan(g: &BipartiteGraph, plan: &Plan) -> u64 {
    execute_plan_recorded(g, plan, &mut NoopRecorder)
}

/// [`execute_plan`] reporting work counters through `rec`. Degree-ordered
/// plans count an isomorphic renumbering of `g`; the total is unchanged
/// (counting is permutation-invariant — pinned by the differential tests),
/// so no inverse mapping is needed here. Per-vertex consumers go through
/// [`butterflies_per_vertex_degree_ordered`], which does map back.
pub fn execute_plan_recorded<R: Recorder>(g: &BipartiteGraph, plan: &Plan, rec: &mut R) -> u64 {
    // Global-order members ignore partition side, blocking, and degree
    // ordering — the global rank *is* their ordering heuristic. The
    // kernels emit their own count/count_parallel phases.
    match (plan.member, plan.mode) {
        (Member::Priority, ExecMode::Parallel { chunks }) => {
            return count_priority_parallel_recorded(g, chunks, rec)
        }
        (Member::Priority, ExecMode::Sharded { shards }) => {
            return count_priority_parallel_recorded(g, shards, rec)
        }
        (Member::Priority, _) => return count_priority_recorded(g, rec),
        (Member::Ranked, ExecMode::Parallel { chunks }) => {
            return count_ranked_parallel_recorded(g, chunks, rec)
        }
        (Member::Ranked, ExecMode::Sharded { shards }) => {
            return count_ranked_parallel_recorded(g, shards, rec)
        }
        (Member::Ranked, _) => return count_ranked_recorded(g, rec),
        (Member::Fixed(_), _) => {}
    }
    let side = plan.partition_side();
    let ordered;
    let g_exec: &BipartiteGraph = if plan.degree_ordered {
        ordered = timed_span(rec, "degree_order", |_| {
            relabel(g, side, &degree_descending(g, side))
        });
        &ordered
    } else {
        g
    };
    match plan.mode {
        ExecMode::Flat => count_recorded(g_exec, plan.invariant, rec),
        ExecMode::Blocked { block_size } => count_blocked_recorded(g_exec, side, block_size, rec),
        ExecMode::Parallel { chunks } => {
            let (part_adj, other_adj) = match side {
                Side::V2 => (g_exec.biadjacency_t(), g_exec.biadjacency()),
                Side::V1 => (g_exec.biadjacency(), g_exec.biadjacency_t()),
            };
            bfly_telemetry::timed_phase(rec, "count_parallel", |rec| {
                count_partitioned_parallel_balanced_recorded(
                    part_adj,
                    other_adj,
                    plan.invariant.traversal(),
                    plan.invariant.update_part(),
                    chunks,
                    rec,
                )
            })
        }
        ExecMode::Sharded { shards } => {
            crate::family::count_sharded_recorded(g_exec, plan.invariant, shards, rec)
        }
    }
}

/// Refine a parallel plan's chunk count from the *measured* wedge-weight
/// distribution instead of the fixed one-chunk-per-worker default.
///
/// [`select_plan`] sizes `ExecMode::Parallel { chunks }` to the worker
/// count before any weights exist; the measured `chunk_us` histograms
/// (BENCH_PARALLEL.md) show that on skewed graphs one chunk then inherits
/// most of the wedge mass and the rest of the pool idles — the
/// `par_imbalance` gauge regularly exceeds 2. This pass computes the
/// exact per-vertex weights (the same array the executor's
/// [`balanced_chunk_bounds`](crate::family::balanced_chunk_bounds) pass
/// uses, so the cost is one extra prefix scan) and resizes via
/// [`tuned_chunk_count`](crate::family::tuned_chunk_count): enough chunks
/// that the p90 vertex weight stops dominating a chunk, capped so the
/// per-chunk accumulator scratch stays bounded.
///
/// Only fixed-member parallel plans are tuned — the global-order kernels
/// batch by rank buckets, and sequential modes have no chunks. Emits the
/// final count as `plan.par_chunks` (overwriting the selection-time
/// gauge) plus `plan.tuned_chunks` so reports show both.
pub fn tune_plan_chunks<R: Recorder>(g: &BipartiteGraph, plan: &mut Plan, rec: &mut R) {
    let (Member::Fixed(_), ExecMode::Parallel { chunks }) = (plan.member, plan.mode) else {
        return;
    };
    let side = plan.partition_side();
    let (part_adj, other_adj) = match side {
        Side::V2 => (g.biadjacency_t(), g.biadjacency()),
        Side::V1 => (g.biadjacency(), g.biadjacency_t()),
    };
    let weights = crate::family::wedge_weights(part_adj, other_adj);
    let tuned = crate::family::tuned_chunk_count(&weights, chunks);
    if tuned != chunks {
        plan.mode = ExecMode::Parallel { chunks: tuned };
        rec.gauge("plan.par_chunks", tuned as f64);
    }
    rec.gauge("plan.tuned_chunks", tuned as f64);
}

/// Count with the adaptively selected sequential plan. Returns the count
/// and the plan that produced it.
pub fn count_adaptive(g: &BipartiteGraph) -> (u64, Plan) {
    count_adaptive_recorded(g, &mut NoopRecorder)
}

/// [`count_adaptive`] reporting the selection and the work through `rec`.
pub fn count_adaptive_recorded<R: Recorder>(g: &BipartiteGraph, rec: &mut R) -> (u64, Plan) {
    let (_, plan) = profile_and_plan_recorded(g, false, 0, rec);
    let xi = execute_plan_recorded(g, &plan, rec);
    (xi, plan)
}

/// Count with the adaptively selected plan on rayon's current pool, using
/// degree-balanced chunk boundaries (one chunk per worker).
pub fn count_adaptive_parallel(g: &BipartiteGraph) -> (u64, Plan) {
    count_adaptive_parallel_recorded(g, &mut NoopRecorder)
}

/// [`count_adaptive_parallel`] reporting through `rec`.
pub fn count_adaptive_parallel_recorded<R: Recorder>(
    g: &BipartiteGraph,
    rec: &mut R,
) -> (u64, Plan) {
    let workers = rayon::current_num_threads().max(1);
    let (_, mut plan) = profile_and_plan_recorded(g, true, workers, rec);
    tune_plan_chunks(g, &mut plan, rec);
    let xi = execute_plan_recorded(g, &plan, rec);
    (xi, plan)
}

/// Fallible [`count_adaptive`]: validates the graph and routes every
/// accumulator through [`CheckedAccum`], so hostile input fails with a
/// typed [`BflyError`] instead of panicking or silently wrapping.
pub fn try_count_adaptive(g: &BipartiteGraph) -> crate::error::Result<(u64, Plan)> {
    try_count_adaptive_recorded(g, &mut NoopRecorder)
}

/// [`try_count_adaptive`] reporting through `rec`.
pub fn try_count_adaptive_recorded<R: Recorder>(
    g: &BipartiteGraph,
    rec: &mut R,
) -> crate::error::Result<(u64, Plan)> {
    crate::error::validate_graph(g)?;
    let (_, plan) = profile_and_plan_recorded(g, false, 0, rec);
    let r = execute_plan_checked_recorded(g, &plan, None, rec)?;
    Ok((r.value, plan))
}

/// Fallible [`count_adaptive_parallel`], overflow-checked per chunk with
/// the per-chunk partials merged exactly.
pub fn try_count_adaptive_parallel(g: &BipartiteGraph) -> crate::error::Result<(u64, Plan)> {
    try_count_adaptive_parallel_recorded(g, &mut NoopRecorder)
}

/// [`try_count_adaptive_parallel`] reporting through `rec`.
pub fn try_count_adaptive_parallel_recorded<R: Recorder>(
    g: &BipartiteGraph,
    rec: &mut R,
) -> crate::error::Result<(u64, Plan)> {
    crate::error::validate_graph(g)?;
    let workers = rayon::current_num_threads().max(1);
    let (_, mut plan) = profile_and_plan_recorded(g, true, workers, rec);
    tune_plan_chunks(g, &mut plan, rec);
    let r = execute_plan_checked_recorded(g, &plan, None, rec)?;
    Ok((r.value, plan))
}

/// Estimated bytes of one [`Spa`](bfly_sparse::Spa) accumulator over `n`
/// slots (values, stamps, and the touched list — three word-sized arrays).
fn spa_bytes(n: usize) -> u64 {
    24 * n as u64
}

/// Order-of-magnitude scratch estimate for executing `plan` on a graph
/// of `profile`'s shape: one wedge accumulator per worker (sized by the
/// partitioned side), the chunk-balancing arrays when parallel, and the
/// relabelled graph copy when degree-ordered. Deliberately coarse — the
/// byte budget guards against the order-of-magnitude blowups (a dense
/// pair matrix, one accumulator per worker on a huge side), not malloc
/// accounting.
pub fn plan_scratch_bytes(profile: &GraphProfile, plan: &Plan) -> u64 {
    if !matches!(plan.member, Member::Fixed(_)) {
        // Global-order members: one accumulator per chunk sized by the
        // *larger* side (starts live on both sides), the two rank arrays,
        // the per-start weight array when chunked, and — for ranked — one
        // flat wedge batch per chunk.
        let n = profile.nv1.max(profile.nv2);
        let nboth = (profile.nv1 + profile.nv2) as u64;
        let chunks = match plan.mode {
            ExecMode::Parallel { chunks } => chunks.max(1) as u64,
            ExecMode::Sharded { shards } => shards.max(1) as u64,
            _ => 1,
        };
        let batches = if matches!(plan.member, Member::Ranked) {
            chunks.saturating_mul(4 * RANKED_BUCKET_WEDGES)
        } else {
            0
        };
        let weights = if chunks > 1 || matches!(plan.member, Member::Ranked) {
            8 * nboth
        } else {
            0
        };
        return chunks
            .saturating_mul(spa_bytes(n))
            .saturating_add(4 * nboth)
            .saturating_add(weights)
            .saturating_add(batches);
    }
    let n = match plan.partition_side() {
        Side::V1 => profile.nv1,
        Side::V2 => profile.nv2,
    };
    let mode = match plan.mode {
        ExecMode::Flat | ExecMode::Blocked { .. } => spa_bytes(n),
        ExecMode::Parallel { chunks } => {
            (chunks as u64).saturating_mul(spa_bytes(n)) + 16 * n as u64
        }
        ExecMode::Sharded { shards } => {
            // Out-of-core footprint: the `.bfly` metadata (degree arrays
            // plus payload indexes for both sides), one shard's worth of
            // decoded partition rows, one decoded other-side row, one
            // accumulator over the partitioned side, and the shard
            // balancing arrays. Unlike the in-memory modes this *replaces*
            // the resident graph rather than adding to it.
            let shards = shards.max(1) as u64;
            let nboth = (profile.nv1 + profile.nv2) as u64;
            let max_deg_other = match plan.partition_side() {
                Side::V1 => profile.max_deg_v2,
                Side::V2 => profile.max_deg_v1,
            } as u64;
            let metadata = 12 * nboth + 32;
            let shard_rows = (4 * profile.nedges as u64 + 8 * n as u64) / shards;
            let rowbuf = 12 * max_deg_other;
            let weights = 8 * n as u64 + 8 * (shards + 1);
            // One transient beyond the steady state: the shard's encoded
            // varint payload is alive alongside its decoded rows during
            // segment decode (varints run ~half the decoded width). The
            // wedge-weight scan streams through a window sized to the
            // same per-shard budget, so it is covered by the same terms.
            let shard_payload = shard_rows / 2;
            metadata
                .saturating_add(shard_rows)
                .saturating_add(shard_payload)
                .saturating_add(rowbuf)
                .saturating_add(spa_bytes(n))
                .saturating_add(weights)
        }
    };
    let relabel_copy = if plan.degree_ordered {
        16 * profile.nedges as u64 + 8 * (profile.nv1 + profile.nv2) as u64
    } else {
        0
    };
    mode.saturating_add(relabel_copy)
}

/// Budget-aware [`select_plan`] under **total** accounting: an in-memory
/// plan's byte cost is the resident graph ([`GraphProfile::resident_bytes`])
/// *plus* [`plan_scratch_bytes`]. Two regimes:
///
/// **Doesn't fit at all** — when the cap cannot hold even the cheapest
/// in-memory shape (resident graph + one flat accumulator over the best
/// fixed partition side), "doesn't fit" is a *planned* tier, not a
/// degradation: the returned plan is [`ExecMode::Sharded`] with a shard
/// count sized so one shard's rows plus the accumulator fit the cap, and
/// no `budget.degraded` gauge is recorded. Sharded scratch *replaces* the
/// resident term — only metadata, one shard, and one accumulator are live.
///
/// **Fits, tightly** — starts from the unconstrained choice and degrades
/// until resident + scratch fits, in preference order —
///
/// 1. halve the parallel chunk count (each chunk owns an accumulator the
///    size of the partitioned side),
/// 2. abandon parallelism entirely,
/// 3. demote a global-order member to its best fixed invariant (dropping
///    the rank arrays, the ranked batches, and the max-side accumulator
///    for the partition-side one — `est_work`/`est_work_alt` swap back,
///    and the wedge-work cap is re-checked against the higher fixed
///    total),
/// 4. drop the degree-ordered relabel (it copies the graph).
///
/// Each applied degradation is recorded once via
/// [`record_degraded`]`(rec, "bytes")`. A byte cap below even the sharded
/// tier's floor and a wedge-work cap below `est_work` (already the
/// minimum over both sides, so no cheaper shape exists) fail with
/// [`BflyError::BudgetExceeded`] carrying the exact estimated bytes.
pub fn select_plan_budgeted<R: Recorder>(
    profile: &GraphProfile,
    parallel: bool,
    workers: usize,
    budget: &ResourceBudget,
    rec: &mut R,
) -> crate::error::Result<Plan> {
    let total_bytes = |plan: &Plan| {
        profile
            .resident_bytes
            .saturating_add(plan_scratch_bytes(profile, plan))
    };
    let mut plan = select_plan(profile, parallel, workers);
    budget.check_wedge_work(plan.est_work)?;
    // Floor of the in-memory regime: the resident graph plus the flat
    // fixed-member accumulator. Below it no degradation sequence can
    // ever fit, so the planner goes straight to the sharded tier.
    let mut floor = plan.clone();
    if !matches!(floor.member, Member::Fixed(_)) {
        floor.member = Member::Fixed(floor.invariant);
        std::mem::swap(&mut floor.est_work, &mut floor.est_work_alt);
    }
    floor.mode = ExecMode::Flat;
    floor.degree_ordered = false;
    if !budget.bytes_fit(total_bytes(&floor)) {
        return select_sharded_plan(profile, budget);
    }
    let mut degraded = false;
    loop {
        if budget.bytes_fit(total_bytes(&plan)) {
            break;
        }
        match plan.mode {
            ExecMode::Parallel { chunks } if chunks > 1 => {
                plan.mode = ExecMode::Parallel { chunks: chunks / 2 };
                degraded = true;
            }
            ExecMode::Parallel { .. } => {
                plan.mode = ExecMode::Flat;
                degraded = true;
            }
            _ if !matches!(plan.member, Member::Fixed(_)) => {
                plan.member = Member::Fixed(plan.invariant);
                std::mem::swap(&mut plan.est_work, &mut plan.est_work_alt);
                budget.check_wedge_work(plan.est_work)?;
                degraded = true;
            }
            _ if plan.degree_ordered => {
                plan.degree_ordered = false;
                degraded = true;
            }
            _ => break,
        }
    }
    if degraded {
        record_degraded(rec, "bytes");
    }
    budget.check_bytes(total_bytes(&plan))?;
    Ok(plan)
}

/// The "doesn't fit" tier of [`select_plan_budgeted`]: a fixed-member
/// [`ExecMode::Sharded`] plan whose shard count is doubled from 1 until
/// one shard's rows plus the single accumulator fit the byte cap (capped
/// at one vertex per shard). Global-order members are normalised to the
/// best fixed invariant first — their rank arrays span both sides at
/// once, which is exactly what the tier cannot afford. The final
/// [`ResourceBudget::check_bytes`] carries the exact estimated bytes of
/// the smallest viable shape, so an impossible cap fails through the
/// same [`BflyError::BudgetExceeded`] path as every other shape.
fn select_sharded_plan(
    profile: &GraphProfile,
    budget: &ResourceBudget,
) -> crate::error::Result<Plan> {
    let mut plan = select_plan(profile, false, 0);
    if !matches!(plan.member, Member::Fixed(_)) {
        plan.member = Member::Fixed(plan.invariant);
        std::mem::swap(&mut plan.est_work, &mut plan.est_work_alt);
    }
    plan.degree_ordered = false;
    budget.check_wedge_work(plan.est_work)?;
    let part_len = match plan.partition_side() {
        Side::V1 => profile.nv1,
        Side::V2 => profile.nv2,
    }
    .max(1);
    let mut shards = 1usize;
    loop {
        plan.mode = ExecMode::Sharded { shards };
        if budget.bytes_fit(plan_scratch_bytes(profile, &plan)) || shards >= part_len {
            break;
        }
        shards = (shards * 2).min(part_len);
    }
    budget.check_bytes(plan_scratch_bytes(profile, &plan))?;
    Ok(plan)
}

/// Profile `g` and select a budget-constrained plan inside a `select`
/// span, emitting the `plan.*` gauges for the plan that will actually
/// run (after any degradation).
pub fn profile_and_plan_budgeted_recorded<R: Recorder>(
    g: &BipartiteGraph,
    parallel: bool,
    workers: usize,
    budget: &ResourceBudget,
    rec: &mut R,
) -> crate::error::Result<(GraphProfile, Plan)> {
    timed_span(rec, "select", |rec| {
        let profile = GraphProfile::compute(g);
        let plan = select_plan_budgeted(&profile, parallel, workers, budget, rec)?;
        record_plan_gauges(rec, &plan);
        Ok((profile, plan))
    })
}

/// Overflow-checked, deadline-aware [`execute_plan_recorded`]. Blocked
/// plans run the flat checked kernel (blocking is a locality
/// optimisation with no checked variant; the count is identical).
/// Parallel plans poll the deadline inside each chunk. Returns the count
/// with `complete = false` when the deadline cut the traversal short —
/// the value is then the exact count over the vertices processed before
/// the cut, a lower bound on the true total.
pub fn execute_plan_checked_recorded<R: Recorder>(
    g: &BipartiteGraph,
    plan: &Plan,
    deadline: Option<Instant>,
    rec: &mut R,
) -> crate::error::Result<Partial<u64>> {
    if !matches!(plan.member, Member::Fixed(_)) {
        let chunks = match plan.mode {
            ExecMode::Parallel { chunks } => chunks,
            ExecMode::Sharded { shards } => shards,
            _ => 1,
        };
        let phase = if chunks > 1 {
            "count_parallel"
        } else {
            "count"
        };
        let (acc, complete) = bfly_telemetry::timed_phase(rec, phase, |_| match plan.member {
            Member::Priority => count_priority_checked_deadline(g, chunks, deadline),
            Member::Ranked => count_ranked_checked_deadline(g, chunks, deadline),
            Member::Fixed(_) => unreachable!(),
        })?;
        let value = acc.finish().map_err(|partial| BflyError::CountOverflow {
            partial,
            context: "count_adaptive",
        })?;
        return Ok(if complete {
            Partial::complete(value)
        } else {
            Partial::truncated(value)
        });
    }
    let side = plan.partition_side();
    let ordered;
    let g_exec: &BipartiteGraph = if plan.degree_ordered {
        ordered = timed_span(rec, "degree_order", |_| {
            relabel(g, side, &degree_descending(g, side))
        });
        &ordered
    } else {
        g
    };
    let (part_adj, other_adj) = match side {
        Side::V2 => (g_exec.biadjacency_t(), g_exec.biadjacency()),
        Side::V1 => (g_exec.biadjacency(), g_exec.biadjacency_t()),
    };
    let (acc, complete) = match plan.mode {
        ExecMode::Parallel { chunks } => {
            bfly_telemetry::timed_phase(rec, "count_parallel", |_| {
                crate::family::count_partitioned_parallel_checked_deadline(
                    part_adj,
                    other_adj,
                    plan.invariant.traversal(),
                    plan.invariant.update_part(),
                    chunks,
                    deadline,
                )
            })?
        }
        ExecMode::Flat | ExecMode::Blocked { .. } => {
            let mut acc = CheckedAccum::new();
            let complete = bfly_telemetry::timed_phase(rec, "count", |rec| {
                count_partitioned_checked_recorded(
                    part_adj,
                    other_adj,
                    plan.invariant.traversal(),
                    plan.invariant.update_part(),
                    &mut acc,
                    deadline,
                    rec,
                )
            });
            (acc, complete)
        }
        ExecMode::Sharded { shards } => {
            let mut acc = CheckedAccum::new();
            let complete = bfly_telemetry::timed_phase(rec, "count", |rec| {
                crate::family::sharded::count_sharded_partitioned_checked_recorded(
                    part_adj,
                    other_adj,
                    plan.invariant.traversal(),
                    plan.invariant.update_part(),
                    shards,
                    deadline,
                    &mut acc,
                    rec,
                )
            });
            (acc, complete)
        }
    };
    let value = acc.finish().map_err(|partial| BflyError::CountOverflow {
        partial,
        context: "count_adaptive",
    })?;
    Ok(if complete {
        Partial::complete(value)
    } else {
        Partial::truncated(value)
    })
}

/// [`count_adaptive_budgeted_recorded`] without telemetry.
pub fn count_adaptive_budgeted(
    g: &BipartiteGraph,
    parallel: bool,
    budget: &ResourceBudget,
) -> crate::error::Result<Partial<(u64, Plan)>> {
    count_adaptive_budgeted_recorded(g, parallel, budget, &mut NoopRecorder)
}

/// Resource-budgeted adaptive count: validates the graph, selects a plan
/// that fits the budget (degrading per [`select_plan_budgeted`]),
/// executes it overflow-checked with the budget's deadline threaded to
/// the kernels, and tags every degradation in telemetry. A deadline that
/// expires mid-count yields `complete = false` with the exact count over
/// the processed prefix (and a `budget.degraded = 3` gauge) rather than
/// an error; only a budget with no viable shape at all fails.
pub fn count_adaptive_budgeted_recorded<R: Recorder>(
    g: &BipartiteGraph,
    parallel: bool,
    budget: &ResourceBudget,
    rec: &mut R,
) -> crate::error::Result<Partial<(u64, Plan)>> {
    crate::error::validate_graph(g)?;
    budget.record_limits(rec);
    // When the tracking allocator is live (feature `alloc-track` +
    // installed by the binary), the byte cap is also enforced against
    // *measured* live bytes — the process may already be over budget
    // before any plan is chosen, which no estimate can see.
    budget.check_measured_bytes()?;
    let workers = if parallel {
        rayon::current_num_threads().max(1)
    } else {
        0
    };
    let (_, plan) = profile_and_plan_budgeted_recorded(g, parallel, workers, budget, rec)?;
    let r = execute_plan_checked_recorded(g, &plan, budget.deadline, rec)?;
    if !r.complete {
        record_degraded(rec, "deadline");
    }
    record_memory(rec);
    Ok(Partial {
        value: (r.value, plan),
        complete: r.complete,
        fraction: r.fraction,
    })
}

/// Per-vertex butterfly counts computed on the descending-degree
/// renumbering of `side`, mapped back to the original vertex ids — the
/// result-mapping half of the degree-ordered execution mode. Equal to
/// [`crate::vertex_counts::butterflies_per_vertex`] on the original graph
/// (pinned by `tests/degree_order_permutation.rs`).
pub fn butterflies_per_vertex_degree_ordered(g: &BipartiteGraph, side: Side) -> Vec<u64> {
    let perm = degree_descending(g, side);
    let h = relabel(g, side, &perm);
    let renumbered = crate::vertex_counts::butterflies_per_vertex(&h, side);
    let mut out = vec![0u64; renumbered.len()];
    for (new, &old) in perm.iter().enumerate() {
        out[old as usize] = renumbered[new];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::count_brute_force;
    use bfly_graph::generators::{chung_lu, uniform_exact};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn profile_matches_graph_accessors() {
        let g =
            BipartiteGraph::from_edges(3, 4, &[(0, 0), (0, 1), (0, 2), (1, 0), (2, 1)]).unwrap();
        let p = GraphProfile::compute(&g);
        assert_eq!(p.nv1, 3);
        assert_eq!(p.nv2, 4);
        assert_eq!(p.nedges, 5);
        assert_eq!(p.max_deg_v1, 3);
        assert_eq!(p.max_deg_v2, 2);
        assert_eq!(p.wedges_v1, g.wedges_through_v1());
        assert_eq!(p.wedges_v2, g.wedges_through_v2());
        assert_eq!(p.partition_cost(Side::V2), p.wedges_v1);
        assert_eq!(p.partition_cost(Side::V1), p.wedges_v2);
    }

    #[test]
    fn empty_graph_profile_is_all_zero() {
        let p = GraphProfile::compute(&BipartiteGraph::empty(4, 7));
        assert_eq!(p.wedges_v1, 0);
        assert_eq!(p.wedges_v2, 0);
        assert_eq!(p.skew_v1, 0.0);
        assert_eq!(p.skew_v2, 0.0);
        // Tie on work → the paper's smaller-side rule decides (V1 here).
        assert_eq!(select_invariant(&p).partition_side(), Side::V1);
    }

    #[test]
    fn selection_minimises_wedge_work() {
        // One V1 hub of degree 12: partitioning V2 would expand C(12,2)
        // wedges through it, partitioning V1 only the C(1,2)=0 wedges of
        // the leaves. The plan must partition V1.
        let edges: Vec<(u32, u32)> = (0..12).map(|v| (0, v)).collect();
        let star = BipartiteGraph::from_edges(1, 12, &edges).unwrap();
        let p = GraphProfile::compute(&star);
        let plan = select_invariant(&p);
        assert_eq!(plan.partition_side(), Side::V1);
        assert!(plan.est_work <= plan.est_work_alt);
        // And the mirrored star flips the decision.
        let plan_t = select_invariant(&GraphProfile::compute(&star.swap_sides()));
        assert_eq!(plan_t.partition_side(), Side::V2);
    }

    #[test]
    fn prefix_reader_members_are_preferred() {
        // The measured within-side preference (EXPERIMENTS.md E2): the
        // forward A₀-reading member of whichever side is chosen.
        let mut rng = StdRng::seed_from_u64(5);
        let g = uniform_exact(40, 30, 200, &mut rng);
        let plan = select_invariant(&GraphProfile::compute(&g));
        assert!(matches!(plan.mode, ExecMode::Flat));
        assert!(matches!(plan.invariant, Invariant::Inv1 | Invariant::Inv5));
        assert!(!plan.invariant.is_lookahead());
    }

    #[test]
    fn skewed_graphs_trigger_degree_ordering() {
        // A hub of degree 60 among 100 mostly degree-1 V2 vertices: skew
        // well past the threshold on V2... the *partitioned* side is what
        // matters, so build skew there.
        let mut edges: Vec<(u32, u32)> = (0..60).map(|u| (u, 0)).collect();
        edges.extend((0..40u32).map(|u| (u, 1 + u % 30)));
        let g = BipartiteGraph::from_edges(60, 31, &edges).unwrap();
        let p = GraphProfile::compute(&g);
        let plan = select_invariant(&p);
        if plan.degree_ordered {
            assert!(p.skew(plan.partition_side()) >= DEGREE_ORDER_SKEW_THRESHOLD);
        }
        // Whatever was selected, it still counts correctly.
        assert_eq!(execute_plan(&g, &plan), count_brute_force(&g));
    }

    #[test]
    fn adaptive_count_is_correct_across_regimes() {
        let mut rng = StdRng::seed_from_u64(77);
        for g in [
            uniform_exact(30, 50, 220, &mut rng),
            chung_lu(80, 20, 300, 0.9, 0.4, &mut rng),
            BipartiteGraph::complete(7, 5),
            BipartiteGraph::empty(9, 3),
        ] {
            let want = count_brute_force(&g);
            let (xi, _) = count_adaptive(&g);
            assert_eq!(xi, want);
            let (xi_par, plan_par) = count_adaptive_parallel(&g);
            assert_eq!(xi_par, want);
            assert!(matches!(plan_par.mode, ExecMode::Parallel { .. }));
        }
    }

    #[test]
    fn forced_modes_all_agree() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = chung_lu(60, 45, 280, 0.8, 0.6, &mut rng);
        let want = count_brute_force(&g);
        let base = select_invariant(&GraphProfile::compute(&g));
        for (mode, invariant) in [
            (ExecMode::Flat, base.invariant),
            (ExecMode::Blocked { block_size: 16 }, base.invariant),
            (ExecMode::Parallel { chunks: 3 }, base.invariant),
        ] {
            for degree_ordered in [false, true] {
                let plan = Plan {
                    member: Member::Fixed(invariant),
                    invariant,
                    degree_ordered,
                    mode,
                    est_work: base.est_work,
                    est_work_alt: base.est_work_alt,
                };
                assert_eq!(execute_plan(&g, &plan), want, "{plan:?}");
            }
        }
    }

    #[test]
    fn recorded_plan_lands_in_gauges_and_select_span() {
        use bfly_telemetry::InMemoryRecorder;
        let mut rng = StdRng::seed_from_u64(21);
        let g = uniform_exact(50, 20, 180, &mut rng);
        let mut rec = InMemoryRecorder::new();
        let (xi, plan) = count_adaptive_recorded(&g, &mut rec);
        assert_eq!(xi, count_brute_force(&g));
        assert_eq!(
            rec.gauge_value("plan.invariant"),
            Some(plan.invariant.number() as f64)
        );
        assert_eq!(rec.gauge_value("plan.est_work"), Some(plan.est_work as f64));
        assert!(rec.spans().iter().any(|s| s.name == "select"));
    }

    #[test]
    fn degree_ordered_per_vertex_counts_map_back() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = chung_lu(40, 35, 220, 0.9, 0.9, &mut rng);
        for side in [Side::V1, Side::V2] {
            assert_eq!(
                butterflies_per_vertex_degree_ordered(&g, side),
                crate::vertex_counts::butterflies_per_vertex(&g, side)
            );
        }
    }

    #[test]
    fn peel_plan_picks_the_cheap_side_and_gates_parallelism() {
        // One V1 hub of degree 12: tip-peeling V2 would wedge-expand
        // through the hub; peeling V1 is near-free. The plan must pick V1.
        let edges: Vec<(u32, u32)> = (0..12).map(|v| (0, v)).collect();
        let star = BipartiteGraph::from_edges(1, 12, &edges).unwrap();
        let p = GraphProfile::compute(&star);
        let plan = select_peel_plan(&p, 6);
        assert_eq!(plan.side, Side::V1);
        assert!(plan.est_work <= plan.est_work_alt);
        // Tiny work: sequential even with workers available.
        assert!(!plan.parallel);
        assert_eq!(plan.chunks, 1);
        // Mirrored star flips the side.
        assert_eq!(
            select_peel_plan(&GraphProfile::compute(&star.swap_sides()), 6).side,
            Side::V2
        );
        // Past the work floor with workers, the plan goes parallel.
        let big = GraphProfile {
            wedges_v1: PEEL_PARALLEL_MIN_WORK * 4,
            wedges_v2: PEEL_PARALLEL_MIN_WORK * 8,
            ..p
        };
        let plan = select_peel_plan(&big, 4);
        assert!(plan.parallel);
        assert_eq!(plan.chunks, 4);
        assert!(!select_peel_plan(&big, 1).parallel);
    }

    #[test]
    fn recorded_peel_plan_lands_in_gauges() {
        use bfly_telemetry::InMemoryRecorder;
        let g = BipartiteGraph::complete(9, 5);
        let mut rec = InMemoryRecorder::new();
        let (_, plan) = profile_and_peel_plan_recorded(&g, 4, &mut rec);
        assert_eq!(
            rec.gauge_value("peel.parallel"),
            Some(if plan.parallel { 1.0 } else { 0.0 })
        );
        assert_eq!(rec.gauge_value("peel.est_work"), Some(plan.est_work as f64));
        assert!(rec.spans().iter().any(|s| s.name == "select"));
        let pj = plan.to_json();
        for key in ["side", "parallel", "chunks", "est_work", "est_work_alt"] {
            assert!(pj.get(key).is_some(), "peel plan missing {key}");
        }
    }

    #[test]
    fn try_variants_agree_with_infallible_counts() {
        let mut rng = StdRng::seed_from_u64(91);
        for g in [
            uniform_exact(35, 45, 240, &mut rng),
            chung_lu(70, 25, 260, 0.85, 0.5, &mut rng),
            BipartiteGraph::complete(6, 6),
            BipartiteGraph::empty(5, 8),
        ] {
            let want = count_adaptive(&g).0;
            assert_eq!(try_count_adaptive(&g).unwrap().0, want);
            assert_eq!(try_count_adaptive_parallel(&g).unwrap().0, want);
        }
    }

    #[test]
    fn unlimited_budget_is_complete_and_exact() {
        let mut rng = StdRng::seed_from_u64(92);
        let g = uniform_exact(40, 40, 300, &mut rng);
        let want = count_brute_force(&g);
        for parallel in [false, true] {
            let r = count_adaptive_budgeted(&g, parallel, &ResourceBudget::unlimited()).unwrap();
            assert!(r.complete);
            assert_eq!(r.value.0, want);
        }
    }

    #[test]
    fn byte_cap_degrades_parallel_to_fewer_chunks_then_flat() {
        use bfly_telemetry::InMemoryRecorder;
        let mut rng = StdRng::seed_from_u64(93);
        let g = uniform_exact(50, 50, 320, &mut rng);
        let profile = GraphProfile::compute(&g);
        // Room for the resident graph plus exactly one accumulator:
        // parallelism must be abandoned, and the count must still be
        // exact (byte costs are total: resident + scratch).
        let flat_floor =
            profile.resident_bytes + plan_scratch_bytes(&profile, &select_plan(&profile, false, 0));
        let budget = ResourceBudget::unlimited().with_max_bytes(flat_floor);
        let mut rec = InMemoryRecorder::new();
        let r = count_adaptive_budgeted_recorded(&g, true, &budget, &mut rec).unwrap();
        assert!(r.complete);
        assert_eq!(r.value.0, count_brute_force(&g));
        assert!(!matches!(r.value.1.mode, ExecMode::Parallel { chunks } if chunks > 1));
        assert_eq!(rec.gauge_value("budget.degraded"), Some(1.0));
        assert!(rec.spans().iter().any(|s| s.name == "degraded"));
        // One byte below the in-memory floor: the planner routes to the
        // *planned* sharded tier — still exact, no degradation recorded,
        // because sharded scratch replaces the resident graph.
        let ooc = ResourceBudget::unlimited().with_max_bytes(flat_floor - 1);
        let mut rec_ooc = InMemoryRecorder::new();
        let r_ooc = count_adaptive_budgeted_recorded(&g, true, &ooc, &mut rec_ooc).unwrap();
        assert!(r_ooc.complete);
        assert_eq!(r_ooc.value.0, count_brute_force(&g));
        assert!(matches!(r_ooc.value.1.mode, ExecMode::Sharded { .. }));
        assert_eq!(rec_ooc.gauge_value("budget.degraded"), None);
        assert!(rec_ooc.gauge_value("plan.shards").unwrap_or(0.0) >= 1.0);
        // A cap below even the sharded tier's metadata has no viable shape.
        let starved = ResourceBudget::unlimited().with_max_bytes(64);
        let err = count_adaptive_budgeted(&g, true, &starved).unwrap_err();
        assert!(matches!(
            err,
            crate::error::BflyError::BudgetExceeded {
                resource: "bytes",
                ..
            }
        ));
    }

    #[test]
    fn work_cap_below_minimum_side_is_a_hard_error() {
        let g = BipartiteGraph::complete(8, 8);
        let budget = ResourceBudget::unlimited().with_max_wedge_work(1);
        let err = count_adaptive_budgeted(&g, false, &budget).unwrap_err();
        assert!(matches!(
            err,
            crate::error::BflyError::BudgetExceeded {
                resource: "wedge_work",
                ..
            }
        ));
    }

    #[test]
    fn expired_deadline_yields_truncated_partial_with_telemetry() {
        use bfly_telemetry::InMemoryRecorder;
        use std::time::Duration;
        // Enough partitioned vertices that the stride poll fires: a path
        // graph, > DEADLINE_STRIDE vertices per side, zero butterflies.
        let n = 9000u32;
        let edges: Vec<(u32, u32)> = (0..n).flat_map(|u| [(u, u), (u, (u + 1) % n)]).collect();
        let g = BipartiteGraph::from_edges(n as usize, n as usize, &edges).unwrap();
        let budget = ResourceBudget::unlimited().with_deadline_in(Duration::ZERO);
        let mut rec = InMemoryRecorder::new();
        let r = count_adaptive_budgeted_recorded(&g, false, &budget, &mut rec).unwrap();
        assert!(!r.complete);
        assert_eq!(rec.gauge_value("budget.degraded"), Some(3.0));
        // The partial value is a lower bound on the true count (here 0 ≤ n).
        assert!(r.value.0 <= count_adaptive(&g).0);
    }

    #[test]
    fn invalid_graph_fails_upfront_in_try_paths() {
        let g = BipartiteGraph::complete(2, 2);
        // try paths validate; the infallible path does not. Build a bad
        // graph through the unchecked constructor if one exists — absent
        // that, validation of a good graph must pass.
        assert!(crate::error::validate_graph(&g).is_ok());
        assert!(try_count_adaptive(&g).is_ok());
    }

    /// A strongly-skewed stand-in that clears both member-gate terms:
    /// priority work < 0.9× the best fixed side, fixed side ≥ the floor.
    /// (Seed pinned; the selection tests assert the gate fired.)
    fn skewed_standin() -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(1812);
        chung_lu(160, 120, 1600, 1.0, 1.0, &mut rng)
    }

    #[test]
    fn skewed_graphs_select_global_order_members() {
        let g = skewed_standin();
        let p = GraphProfile::compute(&g);
        let best_fixed = p.wedges_v1.min(p.wedges_v2);
        assert!(
            (p.wedges_priority as u128) * 10 < (best_fixed as u128) * 9
                && best_fixed >= PRIORITY_MIN_WORK,
            "stand-in no longer clears the gate: priority {} vs fixed {best_fixed}",
            p.wedges_priority
        );
        let want = count_brute_force(&g);
        let seq = select_plan(&p, false, 0);
        assert_eq!(seq.member, Member::Priority);
        assert!(!seq.degree_ordered);
        assert_eq!(seq.est_work, p.wedges_priority);
        assert_eq!(seq.est_work_alt, best_fixed);
        assert_eq!(execute_plan(&g, &seq), want);
        let par = select_plan(&p, true, 4);
        assert_eq!(par.member, Member::Ranked);
        assert!(matches!(par.mode, ExecMode::Parallel { chunks: 4 }));
        assert_eq!(execute_plan(&g, &par), want);
        // Checked twins agree and report completion.
        for plan in [&seq, &par] {
            let r = execute_plan_checked_recorded(&g, plan, None, &mut NoopRecorder).unwrap();
            assert!(r.complete);
            assert_eq!(r.value, want);
        }
    }

    #[test]
    fn near_uniform_graphs_keep_fixed_members() {
        // Near-uniform degrees: measured priority work *exceeds* the best
        // fixed side (the regime where the global order loses), so the
        // gate must not fire even though the work floor is cleared.
        let mut rng = StdRng::seed_from_u64(4005);
        let g = uniform_exact(120, 120, 2400, &mut rng);
        let p = GraphProfile::compute(&g);
        assert!(p.wedges_v1.min(p.wedges_v2) >= PRIORITY_MIN_WORK);
        for (parallel, workers) in [(false, 0), (true, 4)] {
            let plan = select_plan(&p, parallel, workers);
            assert!(matches!(plan.member, Member::Fixed(_)), "{plan:?}");
        }
    }

    #[test]
    fn global_order_forecast_is_exact_for_both_members() {
        use bfly_telemetry::InMemoryRecorder;
        let g = skewed_standin();
        let mut rec = InMemoryRecorder::new();
        let (_, plan) = count_adaptive_recorded(&g, &mut rec);
        assert_eq!(plan.member, Member::Priority);
        assert_eq!(rec.counter(Counter::WedgesExpanded), plan.forecast().total);
        let mut rec_par = InMemoryRecorder::new();
        let (_, plan_par) = count_adaptive_parallel_recorded(&g, &mut rec_par);
        assert_eq!(plan_par.member, Member::Ranked);
        assert_eq!(
            rec_par.counter(Counter::WedgesExpanded),
            plan_par.forecast().total
        );
        assert_eq!(rec.gauge_value("plan.member"), Some(1.0));
        assert_eq!(rec_par.gauge_value("plan.member"), Some(2.0));
    }

    #[test]
    fn byte_cap_demotes_global_order_member_to_fixed() {
        use bfly_telemetry::InMemoryRecorder;
        let g = skewed_standin();
        let p = GraphProfile::compute(&g);
        let chosen = select_plan(&p, false, 0);
        assert_eq!(chosen.member, Member::Priority);
        // Cap below the priority plan's scratch but at the fixed flat
        // floor: the planner must demote to the fixed invariant and the
        // count must be unchanged.
        let mut fixed = chosen.clone();
        fixed.member = Member::Fixed(fixed.invariant);
        std::mem::swap(&mut fixed.est_work, &mut fixed.est_work_alt);
        let floor = p.resident_bytes + plan_scratch_bytes(&p, &fixed);
        assert!(plan_scratch_bytes(&p, &fixed) < plan_scratch_bytes(&p, &chosen));
        let budget = ResourceBudget::unlimited().with_max_bytes(floor);
        let mut rec = InMemoryRecorder::new();
        let r = count_adaptive_budgeted_recorded(&g, false, &budget, &mut rec).unwrap();
        assert!(r.complete);
        assert_eq!(r.value.0, count_brute_force(&g));
        assert!(matches!(r.value.1.member, Member::Fixed(_)));
        assert_eq!(rec.gauge_value("budget.degraded"), Some(1.0));
    }

    #[test]
    fn json_payloads_name_every_field() {
        let g = BipartiteGraph::complete(3, 9);
        let p = GraphProfile::compute(&g);
        let plan = select_invariant(&p);
        let pj = p.to_json();
        for key in [
            "nv1",
            "nv2",
            "nedges",
            "wedges_v1",
            "wedges_v2",
            "wedges_priority",
            "skew_v1",
            "resident_bytes",
        ] {
            assert!(pj.get(key).is_some(), "profile missing {key}");
        }
        let lj = plan.to_json();
        for key in [
            "member",
            "invariant",
            "partition_side",
            "mode",
            "degree_ordered",
            "est_work",
            "shards",
        ] {
            assert!(lj.get(key).is_some(), "plan missing {key}");
        }
        assert_eq!(
            lj.get("invariant").and_then(Json::as_u64),
            Some(plan.invariant.number() as u64)
        );
    }
}
