//! The per-pair butterfly matrix `C` (paper §II-A).
//!
//! `C = ½·B ∘ (B − J)` with `B = A·Aᵀ`: entry `(i, j)` is the number of
//! butterflies whose V1 wedge-endpoint pair is `{i, j}` (i.e. `C(B_ij, 2)`
//! — the ½ and the `−J` implement the binomial). The strictly-upper part
//! sums to `Ξ_G` (eq. 1). Beyond re-deriving the total, `C` is directly
//! useful: `butterflies_between(i, j)` answers pairwise similarity
//! queries, and the top-k heaviest pairs locate the strongest 2×2
//! co-engagement in the network.

use crate::budget::{record_degraded, ResourceBudget};
use bfly_graph::{BipartiteGraph, Side};
use bfly_sparse::ops::spgemm;
use bfly_sparse::{choose2, CheckedAccum, CsrMatrix, Spa};
use bfly_telemetry::{NoopRecorder, Recorder};

/// Symmetric per-pair butterfly counts on one side of the bipartition.
#[derive(Debug, Clone)]
pub struct PairMatrix {
    side: Side,
    /// `C(B_ij, 2)` stored sparsely; diagonal omitted.
    c: CsrMatrix<u64>,
}

impl PairMatrix {
    /// Build `C` for the given side (`Side::V1` pairs vertices of V1 with
    /// wedge points in V2, and vice versa).
    pub fn build(g: &BipartiteGraph, side: Side) -> Self {
        let a: CsrMatrix<u64> = match side {
            Side::V1 => g.to_csr(),
            Side::V2 => g.biadjacency_t().to_csr(),
        };
        let b = spgemm(&a, &a.transpose()).expect("A·Aᵀ shapes conform");
        // Map B ↦ ½ B∘(B−J) entry-wise, dropping the diagonal and pairs
        // with fewer than two shared wedges.
        let mut rowptr = Vec::with_capacity(b.nrows() + 1);
        let mut colind = Vec::new();
        let mut values = Vec::new();
        rowptr.push(0usize);
        for i in 0..b.nrows() {
            let (cols, vals) = b.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if j as usize != i {
                    let pairs = choose2(v);
                    if pairs > 0 {
                        colind.push(j);
                        values.push(pairs);
                    }
                }
            }
            rowptr.push(colind.len());
        }
        let n = b.nrows();
        let c = CsrMatrix::try_from_raw_parts(n, n, rowptr, colind, values)
            .expect("filtered rows stay sorted");
        Self { side, c }
    }

    /// Estimated bytes the dense [`PairMatrix::build`] path materialises:
    /// the intermediate `B = A·Aᵀ` holds up to `Σ_{v ∈ other} deg(v)²`
    /// generated entries (every wedge lands once), at roughly 16 bytes
    /// each. Saturates instead of wrapping — an estimate past `u64` is
    /// "too big" either way.
    pub fn dense_build_bytes(g: &BipartiteGraph, side: Side) -> u64 {
        let other = match side {
            Side::V1 => g.biadjacency_t(),
            Side::V2 => g.biadjacency(),
        };
        let mut wedges = 0u64;
        for v in 0..other.nrows() {
            let d = other.row_nnz(v) as u64;
            wedges = wedges.saturating_add(d.saturating_mul(d));
        }
        wedges.saturating_mul(16)
    }

    /// Budget-aware [`PairMatrix::build`] without telemetry.
    pub fn try_build(
        g: &BipartiteGraph,
        side: Side,
        budget: &ResourceBudget,
    ) -> crate::error::Result<Self> {
        Self::try_build_recorded(g, side, budget, &mut NoopRecorder)
    }

    /// Scratch floor of the streaming fallback: one [`Spa`] over the pair
    /// side (24 bytes/slot: values, stamps, touched list) plus the
    /// per-row sort buffer of `(u32, u64)` entries (16 bytes each, at
    /// most one full row live at once). A byte cap below this has no
    /// viable build shape at all.
    pub fn streaming_build_bytes(g: &BipartiteGraph, side: Side) -> u64 {
        let n = match side {
            Side::V1 => g.nv1(),
            Side::V2 => g.nv2(),
        } as u64;
        40 * n
    }

    /// Budget-aware [`PairMatrix::build`]: validates the graph, and when
    /// the dense path's intermediate `B = A·Aᵀ` would cross the byte
    /// budget ([`PairMatrix::dense_build_bytes`]), degrades to a
    /// streaming row-at-a-time wedge expansion that never materialises
    /// `B` — `O(n)` scratch instead of `O(nnz(B))`, at the cost of a
    /// sort per emitted row. The fallback is recorded via
    /// [`record_degraded`]`(rec, "bytes")`; both paths produce identical
    /// matrices (pinned by the unit tests).
    ///
    /// A cap below even the streaming floor
    /// ([`PairMatrix::streaming_build_bytes`]) fails with
    /// [`BflyError::BudgetExceeded`](crate::error::BflyError) carrying
    /// the exact estimated bytes of the cheapest shape — the same typed
    /// path the adaptive planner's sharded tier reports through, so
    /// callers see one error shape for every "doesn't fit" verdict.
    pub fn try_build_recorded<R: Recorder>(
        g: &BipartiteGraph,
        side: Side,
        budget: &ResourceBudget,
        rec: &mut R,
    ) -> crate::error::Result<Self> {
        crate::error::validate_graph(g)?;
        if budget.bytes_fit(Self::dense_build_bytes(g, side)) {
            return Ok(Self::build(g, side));
        }
        budget.check_bytes(Self::streaming_build_bytes(g, side))?;
        record_degraded(rec, "bytes");
        let (part, other) = match side {
            Side::V1 => (g.biadjacency(), g.biadjacency_t()),
            Side::V2 => (g.biadjacency_t(), g.biadjacency()),
        };
        let n = part.nrows();
        let mut spa = Spa::<u64>::new(n);
        let mut rowptr = Vec::with_capacity(n + 1);
        let mut colind = Vec::new();
        let mut values = Vec::new();
        rowptr.push(0usize);
        for i in 0..n {
            for &v in part.row(i) {
                for &j in other.row(v as usize) {
                    spa.scatter(j, 1);
                }
            }
            let mut row: Vec<(u32, u64)> = spa
                .entries()
                .filter(|&(j, cnt)| j as usize != i && choose2(cnt) > 0)
                .map(|(j, cnt)| (j, choose2(cnt)))
                .collect();
            row.sort_unstable_by_key(|&(j, _)| j);
            for (j, pairs) in row {
                colind.push(j);
                values.push(pairs);
            }
            rowptr.push(colind.len());
            spa.clear();
        }
        let c = CsrMatrix::try_from_raw_parts(n, n, rowptr, colind, values)
            .expect("sorted rows are structurally valid");
        Ok(Self { side, c })
    }

    /// Which side the pairs live on.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Butterflies whose endpoint pair is `{i, j}`.
    pub fn butterflies_between(&self, i: u32, j: u32) -> u64 {
        self.c.get(i as usize, j)
    }

    /// Total butterflies: half the sum (the matrix is symmetric and the
    /// diagonal is dropped) — eq. 1/eq. 2 of the paper.
    pub fn total(&self) -> u64 {
        self.c.sum() / 2
    }

    /// Overflow-checked [`PairMatrix::total`]: the eq. 1 sum runs through
    /// a [`CheckedAccum`], failing with
    /// [`BflyError::CountOverflow`](crate::error::BflyError) (carrying
    /// the exact promoted total) instead of wrapping in release builds.
    pub fn try_total(&self) -> crate::error::Result<u64> {
        let mut acc = CheckedAccum::new();
        for i in 0..self.c.nrows() {
            let (_, vals) = self.c.row(i);
            for &v in vals {
                acc.add(v);
            }
        }
        let total = acc.value() / 2;
        u64::try_from(total).map_err(|_| crate::error::BflyError::CountOverflow {
            partial: total,
            context: "pair_matrix_total",
        })
    }

    /// The `k` heaviest pairs `(i, j, butterflies)` with `i < j`, sorted
    /// descending.
    pub fn top_pairs(&self, k: usize) -> Vec<(u32, u32, u64)> {
        let mut pairs = Vec::new();
        for i in 0..self.c.nrows() {
            let (cols, vals) = self.c.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if (i as u32) < j {
                    pairs.push((i as u32, j, v));
                }
            }
        }
        pairs.sort_by_key(|&(i, j, v)| (std::cmp::Reverse(v), i, j));
        pairs.truncate(k);
        pairs
    }

    /// Number of stored (ordered) pairs.
    pub fn nnz(&self) -> usize {
        self.c.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_spec_on_both_sides() {
        let g = BipartiteGraph::from_edges(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 1),
                (2, 2),
                (3, 3),
            ],
        )
        .unwrap();
        let want = crate::spec::count_brute_force(&g);
        assert_eq!(PairMatrix::build(&g, Side::V1).total(), want);
        assert_eq!(PairMatrix::build(&g, Side::V2).total(), want);
    }

    #[test]
    fn pairwise_queries() {
        let g = BipartiteGraph::complete(3, 3);
        let pm = PairMatrix::build(&g, Side::V1);
        // Every V1 pair shares 3 wedges → C(3,2) = 3 butterflies.
        assert_eq!(pm.butterflies_between(0, 1), 3);
        assert_eq!(pm.butterflies_between(2, 0), 3);
        assert_eq!(pm.butterflies_between(1, 1), 0); // diagonal dropped
        assert_eq!(pm.total(), 9);
    }

    #[test]
    fn top_pairs_ranks_by_count() {
        // Pair {0,1} shares 3 items; pair {2,3} shares 2.
        let g = BipartiteGraph::from_edges(
            4,
            5,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 3),
                (2, 4),
                (3, 3),
                (3, 4),
            ],
        )
        .unwrap();
        let pm = PairMatrix::build(&g, Side::V1);
        let top = pm.top_pairs(2);
        assert_eq!(top[0], (0, 1, 3));
        assert_eq!(top[1], (2, 3, 1));
        // Asking for more pairs than exist just returns all.
        assert_eq!(pm.top_pairs(100).len(), 2);
    }

    #[test]
    fn streaming_fallback_matches_dense_build() {
        use bfly_telemetry::InMemoryRecorder;
        let g = BipartiteGraph::from_edges(
            5,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 1),
                (2, 2),
                (3, 0),
                (3, 3),
                (4, 2),
                (4, 3),
            ],
        )
        .unwrap();
        for side in [Side::V1, Side::V2] {
            let dense = PairMatrix::build(&g, side);
            // An unlimited budget takes the dense path...
            let unbudgeted = PairMatrix::try_build(&g, side, &ResourceBudget::unlimited()).unwrap();
            assert_eq!(unbudgeted.nnz(), dense.nnz());
            // ...while a cap at the streaming floor forces streaming;
            // same matrix either way.
            let mut rec = InMemoryRecorder::new();
            let floor = PairMatrix::streaming_build_bytes(&g, side);
            assert!(floor < PairMatrix::dense_build_bytes(&g, side) || floor > 0);
            let tight = ResourceBudget::unlimited().with_max_bytes(floor);
            let streamed = PairMatrix::try_build_recorded(&g, side, &tight, &mut rec).unwrap();
            assert_eq!(streamed.nnz(), dense.nnz());
            assert_eq!(streamed.total(), dense.total());
            assert_eq!(streamed.top_pairs(10), dense.top_pairs(10));
            assert_eq!(rec.gauge_value("budget.degraded"), Some(1.0));
            // A cap below even the streaming floor fails typed, carrying
            // the exact estimate of the cheapest shape.
            let starved = ResourceBudget::unlimited().with_max_bytes(floor - 1);
            let err = PairMatrix::try_build(&g, side, &starved).unwrap_err();
            match err {
                crate::error::BflyError::BudgetExceeded {
                    resource,
                    limit,
                    requested,
                } => {
                    assert_eq!(resource, "bytes");
                    assert_eq!(limit, floor - 1);
                    assert_eq!(requested, floor);
                }
                other => panic!("expected BudgetExceeded, got {other:?}"),
            }
        }
    }

    #[test]
    fn checked_total_matches_infallible_total() {
        let g = BipartiteGraph::complete(4, 5);
        let pm = PairMatrix::build(&g, Side::V1);
        assert_eq!(pm.try_total().unwrap(), pm.total());
        assert!(PairMatrix::dense_build_bytes(&g, Side::V1) > 0);
    }

    #[test]
    fn butterfly_free_graph_is_empty() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        let pm = PairMatrix::build(&g, Side::V1);
        assert_eq!(pm.nnz(), 0);
        assert_eq!(pm.total(), 0);
        assert!(pm.top_pairs(5).is_empty());
        assert_eq!(pm.side(), Side::V1);
    }
}
