//! The per-pair butterfly matrix `C` (paper §II-A).
//!
//! `C = ½·B ∘ (B − J)` with `B = A·Aᵀ`: entry `(i, j)` is the number of
//! butterflies whose V1 wedge-endpoint pair is `{i, j}` (i.e. `C(B_ij, 2)`
//! — the ½ and the `−J` implement the binomial). The strictly-upper part
//! sums to `Ξ_G` (eq. 1). Beyond re-deriving the total, `C` is directly
//! useful: `butterflies_between(i, j)` answers pairwise similarity
//! queries, and the top-k heaviest pairs locate the strongest 2×2
//! co-engagement in the network.

use bfly_graph::{BipartiteGraph, Side};
use bfly_sparse::ops::spgemm;
use bfly_sparse::{choose2, CsrMatrix};

/// Symmetric per-pair butterfly counts on one side of the bipartition.
#[derive(Debug, Clone)]
pub struct PairMatrix {
    side: Side,
    /// `C(B_ij, 2)` stored sparsely; diagonal omitted.
    c: CsrMatrix<u64>,
}

impl PairMatrix {
    /// Build `C` for the given side (`Side::V1` pairs vertices of V1 with
    /// wedge points in V2, and vice versa).
    pub fn build(g: &BipartiteGraph, side: Side) -> Self {
        let a: CsrMatrix<u64> = match side {
            Side::V1 => g.to_csr(),
            Side::V2 => g.biadjacency_t().to_csr(),
        };
        let b = spgemm(&a, &a.transpose()).expect("A·Aᵀ shapes conform");
        // Map B ↦ ½ B∘(B−J) entry-wise, dropping the diagonal and pairs
        // with fewer than two shared wedges.
        let mut rowptr = Vec::with_capacity(b.nrows() + 1);
        let mut colind = Vec::new();
        let mut values = Vec::new();
        rowptr.push(0usize);
        for i in 0..b.nrows() {
            let (cols, vals) = b.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if j as usize != i {
                    let pairs = choose2(v);
                    if pairs > 0 {
                        colind.push(j);
                        values.push(pairs);
                    }
                }
            }
            rowptr.push(colind.len());
        }
        let n = b.nrows();
        let c = CsrMatrix::try_from_raw_parts(n, n, rowptr, colind, values)
            .expect("filtered rows stay sorted");
        Self { side, c }
    }

    /// Which side the pairs live on.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Butterflies whose endpoint pair is `{i, j}`.
    pub fn butterflies_between(&self, i: u32, j: u32) -> u64 {
        self.c.get(i as usize, j)
    }

    /// Total butterflies: half the sum (the matrix is symmetric and the
    /// diagonal is dropped) — eq. 1/eq. 2 of the paper.
    pub fn total(&self) -> u64 {
        self.c.sum() / 2
    }

    /// The `k` heaviest pairs `(i, j, butterflies)` with `i < j`, sorted
    /// descending.
    pub fn top_pairs(&self, k: usize) -> Vec<(u32, u32, u64)> {
        let mut pairs = Vec::new();
        for i in 0..self.c.nrows() {
            let (cols, vals) = self.c.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if (i as u32) < j {
                    pairs.push((i as u32, j, v));
                }
            }
        }
        pairs.sort_by_key(|&(i, j, v)| (std::cmp::Reverse(v), i, j));
        pairs.truncate(k);
        pairs
    }

    /// Number of stored (ordered) pairs.
    pub fn nnz(&self) -> usize {
        self.c.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_spec_on_both_sides() {
        let g = BipartiteGraph::from_edges(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 1),
                (2, 2),
                (3, 3),
            ],
        )
        .unwrap();
        let want = crate::spec::count_brute_force(&g);
        assert_eq!(PairMatrix::build(&g, Side::V1).total(), want);
        assert_eq!(PairMatrix::build(&g, Side::V2).total(), want);
    }

    #[test]
    fn pairwise_queries() {
        let g = BipartiteGraph::complete(3, 3);
        let pm = PairMatrix::build(&g, Side::V1);
        // Every V1 pair shares 3 wedges → C(3,2) = 3 butterflies.
        assert_eq!(pm.butterflies_between(0, 1), 3);
        assert_eq!(pm.butterflies_between(2, 0), 3);
        assert_eq!(pm.butterflies_between(1, 1), 0); // diagonal dropped
        assert_eq!(pm.total(), 9);
    }

    #[test]
    fn top_pairs_ranks_by_count() {
        // Pair {0,1} shares 3 items; pair {2,3} shares 2.
        let g = BipartiteGraph::from_edges(
            4,
            5,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 3),
                (2, 4),
                (3, 3),
                (3, 4),
            ],
        )
        .unwrap();
        let pm = PairMatrix::build(&g, Side::V1);
        let top = pm.top_pairs(2);
        assert_eq!(top[0], (0, 1, 3));
        assert_eq!(top[1], (2, 3, 1));
        // Asking for more pairs than exist just returns all.
        assert_eq!(pm.top_pairs(100).len(), 2);
    }

    #[test]
    fn butterfly_free_graph_is_empty() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        let pm = PairMatrix::build(&g, Side::V1);
        assert_eq!(pm.nnz(), 0);
        assert_eq!(pm.total(), 0);
        assert!(pm.top_pairs(5).is_empty());
        assert_eq!(pm.side(), Side::V1);
    }
}
