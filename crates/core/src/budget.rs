//! Resource budgets and graceful degradation.
//!
//! A [`ResourceBudget`] caps what an operation may consume along three
//! axes — scratch **bytes**, **wedge work** (the Σ C(deg, 2) unit every
//! cost model in [`crate::adaptive`] already speaks), and a wall-clock
//! **deadline** checked at phase boundaries. Budget-aware entry points
//! degrade in preference order instead of aborting:
//!
//! 1. pick a cheaper plan (parallel → sequential, dense pair matrix →
//!    streaming) when a limit would be crossed,
//! 2. return a [`Partial`] result tagged `complete = false` when a
//!    deadline expires mid-computation,
//! 3. only when no cheaper shape exists, fail with
//!    [`BflyError::BudgetExceeded`](crate::error::BflyError::BudgetExceeded).
//!
//! Every degradation is observable: budgeted paths emit `budget.*`
//! gauges and a `degraded` span through whatever
//! [`Recorder`](bfly_telemetry::Recorder) they were handed, so a
//! production run that silently fell back is visible in its run report.

use crate::error::BflyError;
use bfly_telemetry::Recorder;
use std::time::{Duration, Instant};

/// Limits an operation must stay within. `None` on any axis means
/// unlimited; [`ResourceBudget::default`] is unlimited on all three.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceBudget {
    /// Cap on total bytes of working memory: the resident input graph
    /// *plus* everything the operation allocates (accumulators, scratch
    /// pools, pair matrices). A cap below the resident graph itself is a
    /// meaningful request — the adaptive planner answers it with the
    /// out-of-core sharded tier
    /// ([`ExecMode::Sharded`](crate::adaptive::ExecMode)), which never
    /// materialises the whole graph. Exception: [`PairMatrix`] builds
    /// take the graph as already paid for and budget only their own
    /// scratch.
    ///
    /// [`PairMatrix`]: crate::pair_matrix::PairMatrix
    pub max_bytes: Option<u64>,
    /// Cap on wedge work (Σ C(deg, 2) over the traversed side) — the
    /// budget analogue of the profile's `est_work`.
    pub max_wedge_work: Option<u64>,
    /// Wall-clock deadline, checked at phase/round boundaries (never
    /// inside a kernel's inner loop).
    pub deadline: Option<Instant>,
}

impl ResourceBudget {
    /// No limits on any axis.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Returns `true` when no axis is constrained (the common fast path:
    /// budgeted code skips its checks entirely).
    pub fn is_unlimited(&self) -> bool {
        self.max_bytes.is_none() && self.max_wedge_work.is_none() && self.deadline.is_none()
    }

    /// Builder: cap working memory.
    pub fn with_max_bytes(mut self, bytes: u64) -> Self {
        self.max_bytes = Some(bytes);
        self
    }

    /// Builder: cap wedge work.
    pub fn with_max_wedge_work(mut self, work: u64) -> Self {
        self.max_wedge_work = Some(work);
        self
    }

    /// Builder: deadline `d` from now.
    pub fn with_deadline_in(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Builder: absolute deadline.
    pub fn with_deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Whether `bytes` of scratch fits the byte budget.
    pub fn bytes_fit(&self, bytes: u64) -> bool {
        self.max_bytes.is_none_or(|cap| bytes <= cap)
    }

    /// Fail with [`BflyError::BudgetExceeded`] if `bytes` of scratch
    /// would cross the byte cap.
    pub fn check_bytes(&self, bytes: u64) -> crate::error::Result<()> {
        match self.max_bytes {
            Some(cap) if bytes > cap => Err(BflyError::BudgetExceeded {
                resource: "bytes",
                limit: cap,
                requested: bytes,
            }),
            _ => Ok(()),
        }
    }

    /// Fail with [`BflyError::BudgetExceeded`] if the estimated wedge
    /// work crosses the work cap.
    pub fn check_wedge_work(&self, work: u64) -> crate::error::Result<()> {
        match self.max_wedge_work {
            Some(cap) if work > cap => Err(BflyError::BudgetExceeded {
                resource: "wedge_work",
                limit: cap,
                requested: work,
            }),
            _ => Ok(()),
        }
    }

    /// Whether the deadline (if any) has passed. Phase boundaries poll
    /// this; kernels never do.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Enforce the byte cap against *measured* live bytes from the
    /// tracking allocator (feature `alloc-track`, installed by the
    /// binary). Complements [`ResourceBudget::check_bytes`], which
    /// works on a-priori estimates: the estimate rejects a plan before
    /// allocating, the measurement catches what estimates miss. A no-op
    /// `Ok(())` when tracking is inactive, so budgeted paths call it
    /// unconditionally at phase boundaries.
    pub fn check_measured_bytes(&self) -> crate::error::Result<()> {
        if !bfly_telemetry::mem::tracking_active() {
            return Ok(());
        }
        self.check_bytes(bfly_telemetry::mem::current_bytes())
    }

    /// Emit the configured limits as `budget.*` gauges so run reports
    /// show what a run was capped at.
    pub fn record_limits<R: Recorder>(&self, rec: &mut R) {
        if !R::ENABLED {
            return;
        }
        if let Some(b) = self.max_bytes {
            rec.gauge("budget.max_bytes", b as f64);
        }
        if let Some(w) = self.max_wedge_work {
            rec.gauge("budget.max_wedge_work", w as f64);
        }
        if self.deadline.is_some() {
            rec.gauge("budget.deadline_set", 1.0);
        }
    }
}

/// Record one degradation decision: a `budget.degraded` gauge naming the
/// axis (1 = bytes, 2 = wedge_work, 3 = deadline) plus a zero-length
/// `degraded` span so trace views show *where* in the run the fallback
/// happened.
pub fn record_degraded<R: Recorder>(rec: &mut R, axis: &'static str) {
    if !R::ENABLED {
        return;
    }
    let code = match axis {
        "bytes" => 1.0,
        "wedge_work" => 2.0,
        _ => 3.0,
    };
    rec.gauge("budget.degraded", code);
    rec.span_enter("degraded");
    rec.span_exit("degraded");
}

/// Emit the tracking allocator's measurements as `mem.current_bytes` /
/// `mem.peak_bytes` gauges. Quiet unless the `alloc-track` allocator is
/// installed, so reports never carry misleading zeros.
pub fn record_memory<R: Recorder>(rec: &mut R) {
    if !R::ENABLED || !bfly_telemetry::mem::tracking_active() {
        return;
    }
    rec.gauge(
        "mem.current_bytes",
        bfly_telemetry::mem::current_bytes() as f64,
    );
    rec.gauge("mem.peak_bytes", bfly_telemetry::mem::peak_bytes() as f64);
}

/// A result that may have been cut short by a deadline. `complete =
/// true` means `value` is exactly what the unbudgeted path returns;
/// `complete = false` means the computation stopped at the last phase
/// boundary before the deadline and `value` holds best-effort state
/// (documented per entry point).
#[derive(Debug, Clone, PartialEq)]
pub struct Partial<T> {
    /// The (possibly truncated) result.
    pub value: T,
    /// Whether the computation ran to completion.
    pub complete: bool,
    /// Estimated fraction of the predicted total work that was done when
    /// the result was produced: `Some(1.0)` for complete results, a
    /// `[0, 1]` estimate against the plan's work forecast at truncation
    /// (see [`bfly_telemetry::WorkForecast`]), `None` when no forecast
    /// was available to measure against.
    pub fraction: Option<f64>,
}

impl<T> Partial<T> {
    /// A result that ran to completion.
    pub fn complete(value: T) -> Self {
        Partial {
            value,
            complete: true,
            fraction: Some(1.0),
        }
    }

    /// A result cut short at a phase boundary, progress unknown.
    pub fn truncated(value: T) -> Self {
        Partial {
            value,
            complete: false,
            fraction: None,
        }
    }

    /// A result cut short with a known completed fraction (clamped to
    /// `[0, 1]`).
    pub fn truncated_at(value: T, fraction: f64) -> Self {
        Partial {
            value,
            complete: false,
            fraction: Some(fraction.clamp(0.0, 1.0)),
        }
    }

    /// Annotate the completed fraction after the fact (e.g. the CLI
    /// measuring hub counters against the plan forecast); clamped to
    /// `[0, 1]`. Complete results keep their exact 1.0.
    pub fn with_fraction(mut self, fraction: f64) -> Self {
        if !self.complete {
            self.fraction = Some(fraction.clamp(0.0, 1.0));
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfly_telemetry::InMemoryRecorder;

    #[test]
    fn unlimited_accepts_everything() {
        let b = ResourceBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.bytes_fit(u64::MAX));
        b.check_bytes(u64::MAX).unwrap();
        b.check_wedge_work(u64::MAX).unwrap();
        assert!(!b.deadline_exceeded());
    }

    #[test]
    fn byte_and_work_caps_enforce() {
        let b = ResourceBudget::unlimited()
            .with_max_bytes(1000)
            .with_max_wedge_work(50);
        assert!(!b.is_unlimited());
        assert!(b.bytes_fit(1000));
        assert!(!b.bytes_fit(1001));
        b.check_bytes(1000).unwrap();
        let e = b.check_bytes(1001).unwrap_err();
        assert!(
            matches!(
                e,
                BflyError::BudgetExceeded {
                    resource: "bytes",
                    limit: 1000,
                    requested: 1001
                }
            ),
            "{e}"
        );
        assert!(matches!(
            b.check_wedge_work(51).unwrap_err(),
            BflyError::BudgetExceeded {
                resource: "wedge_work",
                ..
            }
        ));
    }

    #[test]
    fn elapsed_deadline_trips() {
        let b = ResourceBudget::unlimited().with_deadline_in(Duration::ZERO);
        assert!(b.deadline_exceeded());
        let far = ResourceBudget::unlimited().with_deadline_in(Duration::from_secs(3600));
        assert!(!far.deadline_exceeded());
    }

    #[test]
    fn limits_and_degradations_are_recorded() {
        let mut rec = InMemoryRecorder::new();
        ResourceBudget::unlimited()
            .with_max_bytes(64)
            .with_max_wedge_work(128)
            .with_deadline_in(Duration::from_secs(1))
            .record_limits(&mut rec);
        assert_eq!(rec.gauge_value("budget.max_bytes"), Some(64.0));
        assert_eq!(rec.gauge_value("budget.max_wedge_work"), Some(128.0));
        assert_eq!(rec.gauge_value("budget.deadline_set"), Some(1.0));
        record_degraded(&mut rec, "bytes");
        assert_eq!(rec.gauge_value("budget.degraded"), Some(1.0));
        assert!(rec.spans().iter().any(|s| s.name == "degraded"));
    }

    #[test]
    fn partial_constructors() {
        let done = Partial::complete(7u64);
        assert!(done.complete);
        assert_eq!(done.fraction, Some(1.0));
        let cut = Partial::truncated(7u64);
        assert!(!cut.complete);
        assert_eq!(cut.fraction, None);
        let at = Partial::truncated_at(7u64, 0.42);
        assert_eq!(at.fraction, Some(0.42));
        assert_eq!(Partial::truncated_at(7u64, 7.0).fraction, Some(1.0));
        // with_fraction annotates truncated results but never rewrites a
        // complete one.
        assert_eq!(cut.with_fraction(0.6).fraction, Some(0.6));
        assert_eq!(done.with_fraction(0.6).fraction, Some(1.0));
    }
}
