//! Per-vertex butterfly counts (the `s` vector of the k-tip formulation).
//!
//! The number of butterflies vertex `i ∈ V1` participates in is
//! `b_i = Σ_{j≠i} C(B_ij, 2)` with `B = A·Aᵀ`. The paper's eq. 19 takes
//! `¼·DIAG(BB − B∘B − JB + B)`; because the trace expression charges each
//! butterfly once *in total* (not once per endpoint), that diagonal equals
//! `b_i / 2` — summing it over `i` recovers `Ξ_G`, while the k-tip
//! *definition* ("every vertex is part of at least `k` butterflies", §IV-A)
//! needs `b_i` itself. We therefore expose `b_i` (the Sariyüce–Pinar
//! convention) and provide the literal eq. 19 vector separately so the
//! relationship `2·s_paper = b` is tested rather than assumed.
//!
//! Two implementations:
//! * [`butterflies_per_vertex`] — wedge expansion per vertex (production).
//! * [`butterflies_per_vertex_algebraic`] — via SpGEMM, a transliteration
//!   of eq. 19 (validation; also exercises the sparse substrate).

use bfly_graph::{BipartiteGraph, Side};
use bfly_sparse::ops::spgemm;
use bfly_sparse::{choose2, CsrMatrix, Pattern, Spa};
use rayon::prelude::*;

fn side_adj(g: &BipartiteGraph, side: Side) -> (&Pattern, &Pattern) {
    match side {
        Side::V1 => (g.biadjacency(), g.biadjacency_t()),
        Side::V2 => (g.biadjacency_t(), g.biadjacency()),
    }
}

/// Butterflies at one vertex of the given side: `Σ_{w≠u} C(|N(u)∩N(w)|, 2)`.
pub(crate) fn butterflies_at_vertex(
    part_adj: &Pattern,
    other_adj: &Pattern,
    u: usize,
    spa: &mut Spa<u64>,
) -> u64 {
    for &j in part_adj.row(u) {
        for &w in other_adj.row(j as usize) {
            if w as usize != u {
                spa.scatter(w, 1);
            }
        }
    }
    let mut acc = 0u64;
    for (_, cnt) in spa.entries() {
        acc += choose2(cnt);
    }
    spa.clear();
    acc
}

/// `b_u` for every vertex on `side`, by wedge expansion.
pub fn butterflies_per_vertex(g: &BipartiteGraph, side: Side) -> Vec<u64> {
    let (part_adj, other_adj) = side_adj(g, side);
    let n = part_adj.nrows();
    let mut spa = Spa::<u64>::new(n);
    (0..n)
        .map(|u| butterflies_at_vertex(part_adj, other_adj, u, &mut spa))
        .collect()
}

/// Fallible, overflow-checked [`butterflies_per_vertex`]: validates the
/// graph first, then accumulates each `b_u` through a
/// [`bfly_sparse::CheckedAccum`] so a per-vertex count exceeding `u64`
/// surfaces as [`BflyError::CountOverflow`](crate::error::BflyError)
/// (carrying the exact promoted value) rather than wrapping in release.
pub fn try_butterflies_per_vertex(
    g: &BipartiteGraph,
    side: Side,
) -> crate::error::Result<Vec<u64>> {
    crate::error::validate_graph(g)?;
    let (part_adj, other_adj) = side_adj(g, side);
    let n = part_adj.nrows();
    let mut spa = Spa::<u64>::new(n);
    let mut out = Vec::with_capacity(n);
    for u in 0..n {
        let mut acc = bfly_sparse::CheckedAccum::new();
        for &j in part_adj.row(u) {
            for &w in other_adj.row(j as usize) {
                if w as usize != u {
                    spa.scatter(w, 1);
                }
            }
        }
        for (_, cnt) in spa.entries() {
            acc.add(choose2(cnt));
        }
        spa.clear();
        out.push(
            acc.finish()
                .map_err(|partial| crate::error::BflyError::CountOverflow {
                    partial,
                    context: "butterflies_per_vertex",
                })?,
        );
    }
    Ok(out)
}

/// Parallel [`butterflies_per_vertex`].
pub fn butterflies_per_vertex_parallel(g: &BipartiteGraph, side: Side) -> Vec<u64> {
    let (part_adj, other_adj) = side_adj(g, side);
    let n = part_adj.nrows();
    (0..n)
        .into_par_iter()
        .map_init(
            || Spa::<u64>::new(n),
            |spa, u| butterflies_at_vertex(part_adj, other_adj, u, spa),
        )
        .collect()
}

/// `b` via sparse algebra: `b_i = Σ_{j≠i} (B_ij² − B_ij)/2`, i.e. twice the
/// paper's eq. 19 diagonal. Used to validate the wedge-expansion version.
pub fn butterflies_per_vertex_algebraic(g: &BipartiteGraph, side: Side) -> Vec<u64> {
    let a: CsrMatrix<u64> = match side {
        Side::V1 => g.to_csr(),
        Side::V2 => g.biadjacency_t().to_csr(),
    };
    let b = spgemm(&a, &a.transpose()).expect("A·Aᵀ shapes conform");
    let mut out = vec![0u64; b.nrows()];
    for (i, o) in out.iter_mut().enumerate() {
        let (cols, vals) = b.row(i);
        let mut acc = 0u64;
        for (&j, &v) in cols.iter().zip(vals) {
            if j as usize != i {
                acc += choose2(v);
            }
        }
        *o = acc;
    }
    out
}

/// The literal eq. 19 vector, `¼·DIAG(BB − B∘B − JB + B)`, returned as
/// doubled numerators so it stays integral: element `i` is `4·s_i` where
/// `s` is the paper's vector. Provided for fidelity testing of the
/// formulation (see module docs on the factor-of-two subtlety).
pub fn eq19_diagonal_times4(g: &BipartiteGraph) -> Vec<u64> {
    let a: CsrMatrix<u64> = g.to_csr();
    let b = spgemm(&a, &a.transpose()).expect("A·Aᵀ shapes conform");
    let mut out = vec![0u64; b.nrows()];
    for (i, o) in out.iter_mut().enumerate() {
        let (cols, vals) = b.row(i);
        let mut sq = 0u64; // (BB)_ii = Σ_j B_ij²  (B symmetric)
        let mut sum = 0u64; // (JB)_ii = Σ_j B_ji = Σ_j B_ij
        let mut diag = 0u64;
        for (&j, &v) in cols.iter().zip(vals) {
            sq += v * v;
            sum += v;
            if j as usize == i {
                diag = v;
            }
        }
        // BB − B∘B − JB + B on the diagonal. Add `diag` before the
        // subtractions: the total is non-negative but the left-to-right
        // prefix `sq − diag² − sum` can dip below zero (a row holding only
        // its diagonal gives d² − d² − d), which traps under debug overflow
        // checks.
        *o = sq + diag - diag * diag - sum;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k33() -> BipartiteGraph {
        BipartiteGraph::complete(3, 3)
    }

    #[test]
    fn complete_graph_counts_per_vertex() {
        // K_{3,3}: 9 butterflies; each V1 vertex is in C(2,1)... directly:
        // pairs containing u: 2 partners × C(3,2) wedge pairs = wrong route;
        // count: butterflies containing u = (partners choose 1 = 2) × 3 = 6.
        let b = butterflies_per_vertex(&k33(), Side::V1);
        assert_eq!(b, vec![6, 6, 6]);
        // Σ b_u = 2·Ξ.
        assert_eq!(b.iter().sum::<u64>(), 18);
        let b2 = butterflies_per_vertex(&k33(), Side::V2);
        assert_eq!(b2, vec![6, 6, 6]);
    }

    #[test]
    fn wedge_expansion_matches_algebraic() {
        let g = BipartiteGraph::from_edges(
            5,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 1),
                (2, 2),
                (3, 2),
                (3, 3),
                (4, 0),
                (4, 1),
            ],
        )
        .unwrap();
        for side in [Side::V1, Side::V2] {
            assert_eq!(
                butterflies_per_vertex(&g, side),
                butterflies_per_vertex_algebraic(&g, side),
                "{side:?}"
            );
            assert_eq!(
                butterflies_per_vertex(&g, side),
                butterflies_per_vertex_parallel(&g, side),
                "{side:?}"
            );
        }
    }

    #[test]
    fn vertex_sums_are_twice_total() {
        let g = BipartiteGraph::from_edges(
            6,
            5,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 2),
                (2, 3),
                (3, 3),
                (3, 4),
                (4, 0),
                (5, 1),
                (4, 1),
            ],
        )
        .unwrap();
        let total = crate::spec::count_brute_force(&g);
        for side in [Side::V1, Side::V2] {
            let b = butterflies_per_vertex(&g, side);
            assert_eq!(b.iter().sum::<u64>(), 2 * total, "{side:?}");
        }
    }

    #[test]
    fn eq19_diagonal_is_half_the_vertex_counts() {
        // The paper's s vector satisfies 4·s_i = 2·b_i, and Σ s = Ξ.
        let g = k33();
        let four_s = eq19_diagonal_times4(&g);
        let b = butterflies_per_vertex(&g, Side::V1);
        for (s4, bi) in four_s.iter().zip(&b) {
            assert_eq!(*s4, 2 * bi);
        }
        let xi = crate::spec::count_brute_force(&g);
        assert_eq!(four_s.iter().sum::<u64>(), 4 * xi);
    }

    #[test]
    fn isolated_vertices_have_zero() {
        let g = BipartiteGraph::from_edges(4, 4, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let b = butterflies_per_vertex(&g, Side::V1);
        assert_eq!(b, vec![1, 1, 0, 0]);
    }
}
