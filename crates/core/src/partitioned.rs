//! The partitioned specification itself (paper §III-A/§III-B).
//!
//! Splitting `V2` into `L | R` (or `V1` into `T / B`) classifies every
//! butterfly by where its two wedge points fall: `Ξ_G = Ξ_L + Ξ_LR + Ξ_R`
//! (eq. 8), with each category given in closed matrix form by eq. 10.
//! This module computes the three categories directly — both by wedge
//! expansion ([`count_categories`]) and by transliterating the ten-trace
//! expansion of eq. 9 over dense matrices ([`count_dense_partitioned`]) —
//! so the identity at the root of the whole derivation is executable and
//! tested, not just asserted on paper. The loop invariants of Figs. 4–5
//! are exactly partial sums of these categories.

use bfly_graph::{BipartiteGraph, Side};
use bfly_sparse::{choose2, DenseMatrix, Spa};

/// The three butterfly categories induced by a 2-way partition of one
/// vertex set (paper's categories 1–3 for V2, 4–6 for V1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategoryCounts {
    /// Both wedge points in the first part (`Ξ_L` / `Ξ_T`).
    pub both_first: u64,
    /// One wedge point in each part (`Ξ_LR` / `Ξ_TB`).
    pub split: u64,
    /// Both wedge points in the second part (`Ξ_R` / `Ξ_B`).
    pub both_second: u64,
}

impl CategoryCounts {
    /// `Ξ_G` by eq. 8/11.
    pub fn total(&self) -> u64 {
        self.both_first + self.split + self.both_second
    }
}

/// Count the three categories for the partition that puts vertices
/// `0..split` of `side` in the first part and the rest in the second.
pub fn count_categories(g: &BipartiteGraph, side: Side, split: usize) -> CategoryCounts {
    let (part_adj, other_adj) = match side {
        Side::V2 => (g.biadjacency_t(), g.biadjacency()),
        Side::V1 => (g.biadjacency(), g.biadjacency_t()),
    };
    let n = part_adj.nrows();
    assert!(split <= n, "split point {split} exceeds side size {n}");
    let mut counts = CategoryCounts {
        both_first: 0,
        split: 0,
        both_second: 0,
    };
    let mut spa = Spa::<u64>::new(n);
    for k in 0..n {
        let k32 = k as u32;
        // Expand pairs (k, c) with c > k once; classify by the partition.
        for &j in part_adj.row(k) {
            let row = other_adj.row(j as usize);
            let cut = row.partition_point(|&c| c <= k32);
            for &c in &row[cut..] {
                spa.scatter(c, 1);
            }
        }
        for (c, cnt) in spa.entries() {
            let b = choose2(cnt);
            if b == 0 {
                continue;
            }
            let k_first = k < split;
            let c_first = (c as usize) < split;
            match (k_first, c_first) {
                (true, true) => counts.both_first += b,
                (false, false) => counts.both_second += b,
                _ => counts.split += b,
            }
        }
        spa.clear();
    }
    counts
}

/// The ten-trace dense expansion of eq. 9 (and its eq. 10 groupings),
/// evaluated literally: `A` is split column-wise at `split` into
/// `(A_L | A_R)` and every trace term is formed with dense matrix algebra.
/// Returns the three category counts; their sum is `Ξ_G`.
///
/// Small graphs only — this exists to make the derivation's central
/// algebraic step executable.
pub fn count_dense_partitioned(g: &BipartiteGraph, split: usize) -> CategoryCounts {
    let a: DenseMatrix<i64> = g.to_dense();
    let (m, n) = a.shape();
    assert!(split <= n);
    // Column split A -> (A_L | A_R).
    let mut al = DenseMatrix::<i64>::zeros(m, split);
    let mut ar = DenseMatrix::<i64>::zeros(m, n - split);
    for i in 0..m {
        for j in 0..n {
            if j < split {
                al.set(i, j, a.get(i, j));
            } else {
                ar.set(i, j - split, a.get(i, j));
            }
        }
    }
    let bl = al.matmul(&al.transpose()).expect("A_L·A_Lᵀ conforms");
    let br = ar.matmul(&ar.transpose()).expect("A_R·A_Rᵀ conforms");

    let category = |b: &DenseMatrix<i64>| -> u64 {
        // eq. 10: ¼Γ(BB − B∘B − JB + B) with B symmetric.
        let t1 = b.matmul(b).unwrap().trace();
        let t2 = b.hadamard(b).unwrap().trace();
        let t3 = b.sum(); // Γ(JB)
        let t4 = b.trace();
        let v = t1 - t2 - t3 + t4;
        debug_assert!(v >= 0 && v % 4 == 0);
        (v / 4) as u64
    };
    let cross = {
        // eq. 10: Ξ_LR = ½Γ(B_L·B_R − B_L∘B_R).
        let t1 = bl.matmul(&br).unwrap().trace();
        let t2 = bl.hadamard(&br).unwrap().trace();
        let v = t1 - t2;
        debug_assert!(v >= 0 && v % 2 == 0);
        (v / 2) as u64
    };
    CategoryCounts {
        both_first: category(&bl),
        split: cross,
        both_second: category(&br),
    }
}

/// The partial sums that the paper's four V2 loop invariants maintain
/// (Fig. 4), expressed through the categories: after processing the first
/// `split` vertices,
///
/// * invariant 1 has counted `Ξ_L`,
/// * invariant 2 has counted `Ξ_L + Ξ_LR`,
/// * invariant 3 has counted `Ξ_LR + Ξ_R`,
/// * invariant 4 has counted `Ξ_R`.
///
/// Returns those four partial sums for a given split — the executable
/// form of Fig. 4 (and, with `Side::V1`, of Fig. 5).
pub fn loop_invariant_states(g: &BipartiteGraph, side: Side, split: usize) -> [u64; 4] {
    let c = count_categories(g, side, split);
    [
        c.both_first,
        c.both_first + c.split,
        c.split + c.both_second,
        c.both_second,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::count_brute_force;
    use bfly_graph::generators::uniform_exact;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(404);
        uniform_exact(18, 14, 90, &mut rng)
    }

    #[test]
    fn categories_sum_to_total_for_every_split() {
        let g = sample();
        let total = count_brute_force(&g);
        for side in [Side::V1, Side::V2] {
            let n = g.nvertices(side);
            for split in 0..=n {
                let c = count_categories(&g, side, split);
                assert_eq!(c.total(), total, "side {side:?} split {split}");
            }
        }
    }

    #[test]
    fn boundary_splits_collapse_categories() {
        let g = sample();
        let total = count_brute_force(&g);
        // split = 0: everything is "both in second part".
        let c = count_categories(&g, Side::V2, 0);
        assert_eq!(c.both_first, 0);
        assert_eq!(c.split, 0);
        assert_eq!(c.both_second, total);
        // split = n: everything in the first.
        let c = count_categories(&g, Side::V2, g.nv2());
        assert_eq!(c.both_first, total);
        assert_eq!(c.split + c.both_second, 0);
    }

    #[test]
    fn dense_eq9_matches_wedge_expansion_categories() {
        let g = sample();
        for split in [0, 1, 5, 7, g.nv2()] {
            let dense = count_dense_partitioned(&g, split);
            let sparse = count_categories(&g, Side::V2, split);
            assert_eq!(dense, sparse, "split {split}");
        }
    }

    #[test]
    fn loop_invariant_states_interpolate_between_zero_and_total() {
        let g = sample();
        let total = count_brute_force(&g);
        // Before the loop (split 0): invariants 1/2 hold 0, 3/4 hold Ξ_G
        // — matching their initialisation/termination conventions.
        let s0 = loop_invariant_states(&g, Side::V2, 0);
        assert_eq!(s0, [0, 0, total, total]);
        // After the loop (split n): inverted.
        let sn = loop_invariant_states(&g, Side::V2, g.nv2());
        assert_eq!(sn, [total, total, 0, 0]);
        // Mid-loop: invariant 2's partial sum dominates invariant 1's, and
        // 3 dominates 4, at every split.
        for split in 0..=g.nv2() {
            let s = loop_invariant_states(&g, Side::V2, split);
            assert!(s[1] >= s[0]);
            assert!(s[2] >= s[3]);
            assert_eq!(s[0] + s[2], total); // Ξ_L + (Ξ_LR + Ξ_R)
            assert_eq!(s[1] + s[3], total); // (Ξ_L + Ξ_LR) + Ξ_R
        }
    }

    #[test]
    fn complete_graph_categories_are_binomial() {
        // K_{4,4} split at 2: pairs within L = C(2,2) choices... each V2
        // pair contributes C(4,2) = 6 butterflies; pairs: LL = 1, LR = 4,
        // RR = 1 → 6, 24, 6.
        let g = BipartiteGraph::complete(4, 4);
        let c = count_categories(&g, Side::V2, 2);
        assert_eq!(c.both_first, 6);
        assert_eq!(c.split, 24);
        assert_eq!(c.both_second, 6);
        assert_eq!(c.total(), 36);
    }
}
