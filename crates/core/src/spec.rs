//! Specification-level butterfly counters.
//!
//! Three independent reference implementations of the count, at three
//! levels of the paper's derivation:
//!
//! 1. [`count_brute_force`] — the *definition*: for every vertex pair
//!    `i < j ∈ V1`, `C(|N(i) ∩ N(j)|, 2)` butterflies. Quadratic in `|V1|`;
//!    use on small graphs only.
//! 2. [`count_dense_formula`] — a literal transliteration of the paper's
//!    eq. 7: `Ξ_G = ¼Γ(AAᵀAAᵀ) − ¼Γ(AAᵀ∘AAᵀ) − (¼Γ(JAAᵀ) − ¼Γ(AAᵀ))`
//!    over dense matrices. This is the postcondition every derived
//!    algorithm must satisfy.
//! 3. [`count_via_spgemm`] — the sparse-linear-algebra mid-point: form
//!    `B = A·Aᵀ` with SpGEMM and evaluate `Σ_{i<j} C(B_ij, 2)` directly.
//!
//! The family in [`crate::family`] is tested to agree with all three.

use bfly_graph::BipartiteGraph;
use bfly_sparse::ops::{spgemm, spgemm_parallel};
use bfly_sparse::{choose2, CsrMatrix, DenseMatrix};

/// Butterfly count by definition: `Σ_{i<j∈V1} C(|N(i) ∩ N(j)|, 2)`.
///
/// `O(|V1|² · Δ)` — reference/testing only.
pub fn count_brute_force(g: &BipartiteGraph) -> u64 {
    let a = g.biadjacency();
    let m = g.nv1();
    let mut total = 0u64;
    for i in 0..m {
        for j in (i + 1)..m {
            total += choose2(a.row_intersection_size(i, j) as u64);
        }
    }
    total
}

/// Literal dense evaluation of the paper's specification (eq. 7).
///
/// All four traces are computed over `i128` so the subtractions cannot
/// wrap; the result is asserted divisible by 4 (it always is for a valid
/// 0/1 biadjacency — the expression counts closed walks in multiples of 4).
pub fn count_dense_formula(g: &BipartiteGraph) -> u64 {
    let a: DenseMatrix<i64> = g.to_dense();
    let at = a.transpose();
    let b = a.matmul(&at).expect("A·Aᵀ shapes conform");
    let bb = b.matmul(&b).expect("B·B shapes conform");
    let b_had_b = b.hadamard(&b).expect("B∘B shapes conform");
    let t1 = bb.trace() as i128; // Γ(AAᵀAAᵀ): closed 4-walks
    let t2 = b_had_b.trace() as i128; // Γ(AAᵀ∘AAᵀ) restricted to diag = Σ B_ii²
    let t3 = b.sum() as i128; // Γ(JAAᵀ) = Σᵢⱼ Bᵢⱼ
    let t4 = b.trace() as i128; // Γ(AAᵀ)
                                // Note Γ(B ∘ B) is the trace of the Hadamard square, i.e. Σᵢ Bᵢᵢ².
    let four_xi = t1 - t2 - (t3 - t4);
    assert!(four_xi >= 0, "specification value must be non-negative");
    assert_eq!(four_xi % 4, 0, "specification value must be divisible by 4");
    (four_xi / 4) as u64
}

/// Sparse evaluation via `B = A·Aᵀ`: `Σ_{i<j} C(B_ij, 2)`, using the
/// symmetry of `B` (off-diagonal sum halved, exactly the step from eq. 1
/// to eq. 2 in the paper).
pub fn count_via_spgemm(g: &BipartiteGraph) -> u64 {
    let a: CsrMatrix<u64> = g.to_csr();
    let b = spgemm(&a, &a.transpose()).expect("A·Aᵀ shapes conform");
    sum_offdiag_choose2(&b) / 2
}

/// Parallel variant of [`count_via_spgemm`] (parallel SpGEMM; the reduction
/// is a single sweep).
pub fn count_via_spgemm_parallel(g: &BipartiteGraph) -> u64 {
    let a: CsrMatrix<u64> = g.to_csr();
    let b = spgemm_parallel(&a, &a.transpose()).expect("A·Aᵀ shapes conform");
    sum_offdiag_choose2(&b) / 2
}

/// `Σ_{i≠j} C(B_ij, 2)` over a (symmetric) wedge matrix.
fn sum_offdiag_choose2(b: &CsrMatrix<u64>) -> u64 {
    let mut acc = 0u64;
    for i in 0..b.nrows() {
        let (cols, vals) = b.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            if j as usize != i {
                acc += choose2(v);
            }
        }
    }
    acc
}

/// Total number of wedges with distinct endpoints in `V1` (paper eq. 6:
/// `W = ½Γ(JBᵀ) − ½Γ(B)`), evaluated sparsely.
pub fn wedge_count_v1_endpoints(g: &BipartiteGraph) -> u64 {
    let a: CsrMatrix<u64> = g.to_csr();
    let b = spgemm(&a, &a.transpose()).expect("A·Aᵀ shapes conform");
    let sum: u64 = b.sum(); // Γ(JBᵀ)
    let tr: u64 = b.trace(); // Γ(B)
    (sum - tr) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 1's butterfly: one 2×2 biclique.
    fn one_butterfly() -> BipartiteGraph {
        BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap()
    }

    /// K_{3,3} has C(3,2)² = 9 butterflies.
    fn k33() -> BipartiteGraph {
        BipartiteGraph::complete(3, 3)
    }

    #[test]
    fn brute_force_known_counts() {
        assert_eq!(count_brute_force(&one_butterfly()), 1);
        assert_eq!(count_brute_force(&k33()), 9);
        assert_eq!(count_brute_force(&BipartiteGraph::complete(4, 5)), 60); // C(4,2)·C(5,2)
        assert_eq!(count_brute_force(&BipartiteGraph::empty(5, 5)), 0);
    }

    #[test]
    fn a_path_has_no_butterflies() {
        // Path u0 - v0 - u1 - v1: a single wedge pair but only 3 edges.
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]).unwrap();
        assert_eq!(count_brute_force(&g), 0);
        assert_eq!(count_dense_formula(&g), 0);
        assert_eq!(count_via_spgemm(&g), 0);
    }

    #[test]
    fn dense_formula_matches_brute_force() {
        for g in [
            one_butterfly(),
            k33(),
            BipartiteGraph::complete(4, 3),
            BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]).unwrap(),
        ] {
            assert_eq!(count_dense_formula(&g), count_brute_force(&g));
        }
    }

    #[test]
    fn spgemm_counter_matches_brute_force() {
        for g in [
            one_butterfly(),
            k33(),
            BipartiteGraph::complete(5, 4),
            BipartiteGraph::from_edges(
                4,
                4,
                &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (2, 2), (3, 3)],
            )
            .unwrap(),
        ] {
            let want = count_brute_force(&g);
            assert_eq!(count_via_spgemm(&g), want);
            assert_eq!(count_via_spgemm_parallel(&g), want);
        }
    }

    #[test]
    fn counting_is_side_symmetric() {
        let g = BipartiteGraph::from_edges(
            5,
            3,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 1),
                (2, 2),
                (3, 1),
                (4, 2),
            ],
        )
        .unwrap();
        assert_eq!(count_via_spgemm(&g), count_via_spgemm(&g.swap_sides()));
        assert_eq!(
            count_dense_formula(&g),
            count_dense_formula(&g.swap_sides())
        );
    }

    #[test]
    fn wedge_count_matches_degree_formula() {
        let g = k33();
        // Each V2 vertex: C(3,2) = 3 wedges → 9 total.
        assert_eq!(wedge_count_v1_endpoints(&g), 9);
        assert_eq!(wedge_count_v1_endpoints(&g), g.wedges_through_v2());
        let h = one_butterfly();
        assert_eq!(wedge_count_v1_endpoints(&h), h.wedges_through_v2());
    }

    #[test]
    fn disjoint_union_is_additive() {
        let g = k33();
        let h = one_butterfly();
        let u = g.disjoint_union(&h);
        assert_eq!(
            count_via_spgemm(&u),
            count_via_spgemm(&g) + count_via_spgemm(&h)
        );
    }
}
