//! # bfly-core
//!
//! The paper's contribution: **families of butterfly counting algorithms
//! for bipartite graphs**, derived from a single linear-algebraic
//! specification, plus the k-tip and k-wing peeling algorithms built on the
//! same formulation.
//!
//! A *butterfly* is a 2×2 biclique: vertices `u, w ∈ V1` and `v, x ∈ V2`
//! with all four edges present — equivalently two distinct wedges sharing
//! endpoints. With `B = A·Aᵀ` (whose `(i,j)` entry counts length-2 paths
//! between `i, j ∈ V1`), the total count is `Ξ_G = Σ_{i<j} C(B_ij, 2)`,
//! which the paper rewrites as the trace expression of eq. 7 and then
//! *derives* eight loop-based algorithms from via the FLAME methodology.
//!
//! Module map:
//!
//! * [`spec`] — specification-level counters (dense eq. 7 transliteration,
//!   SpGEMM-based counter, brute-force pair enumeration). Everything else
//!   is validated against these.
//! * [`family`] — the eight derived algorithms ([`Invariant`]), sequential
//!   ([`count`]), rayon-parallel ([`count_parallel`]), and blocked.
//! * [`adaptive`] — profile-driven selection among the family members
//!   ([`count_adaptive`]): partition side by exact wedge-work estimate,
//!   degree-ordered execution, degree-balanced parallel chunking.
//! * [`vertex_counts`] / [`edge_support`] — per-vertex butterfly counts
//!   (paper eq. 19) and per-edge support `S_w` (eq. 25), each in both
//!   wedge-expansion and literal-algebra form.
//! * [`peel`] — k-tip and k-wing subgraph extraction (eqs. 20–22, 26–27),
//!   the Fig. 8 look-ahead variant, and full tip/wing decompositions.
//! * [`baseline`] — the algorithms the paper positions against: wedge
//!   hash-aggregation (Wang et al. 2014), degree-ordered vertex-priority
//!   counting (Wang et al. VLDB'19), and sampling estimators
//!   (Sanei-Mehri et al. KDD'18).
//! * [`metrics`] — wedge totals, caterpillars, and the bipartite
//!   clustering coefficient the introduction motivates.
//!
//! ```
//! use bfly_core::{count, count_brute_force, Invariant};
//! use bfly_graph::BipartiteGraph;
//!
//! // K_{3,3} holds C(3,2)² = 9 butterflies.
//! let g = BipartiteGraph::complete(3, 3);
//! for inv in Invariant::ALL {
//!     assert_eq!(count(&g, inv), 9);
//! }
//! assert_eq!(count_brute_force(&g), 9);
//! ```

#![warn(missing_docs)]
// Vertex ids index several parallel arrays at once throughout this
// workspace; the indexed loops clippy flags are the clearer form here.
#![allow(clippy::needless_range_loop)]

pub mod adaptive;
pub mod approx;
pub mod baseline;
pub mod budget;
pub mod checkpoint;
pub mod edge_support;
pub mod enumerate;
pub mod error;
pub mod family;
pub mod incremental;
pub mod metrics;
pub mod pair_matrix;
pub mod partitioned;
pub mod peel;
pub mod spec;
#[cfg(feature = "testkit")]
pub mod testkit;
pub mod vertex_counts;
pub mod wedges;

pub use adaptive::{
    count_adaptive, count_adaptive_budgeted, count_adaptive_budgeted_recorded,
    count_adaptive_parallel, count_adaptive_parallel_recorded, count_adaptive_recorded,
    graph_resident_bytes, plan_scratch_bytes, select_invariant, select_plan, select_plan_budgeted,
    try_count_adaptive, try_count_adaptive_parallel, tune_plan_chunks, ExecMode, GraphProfile,
    Member, Plan, PRIORITY_ADVANTAGE, PRIORITY_MIN_WORK,
};
pub use budget::{record_memory, Partial, ResourceBudget};
pub use checkpoint::{fingerprint_segmented, CheckpointConfig, CheckpointStore};
pub use enumerate::{count_by_enumeration, enumerate_butterflies, for_each_butterfly, Butterfly};
pub use error::{validate_graph, BflyError};
pub use family::{
    count, count_auto, count_auto_recorded, count_parallel, count_parallel_recorded,
    count_parallel_shared, count_parallel_with_threads, count_parallel_with_threads_recorded,
    count_priority, count_priority_parallel, count_priority_shared, count_ranked,
    count_ranked_parallel, count_ranked_shared, count_recorded, count_segmented,
    count_segmented_budgeted_recorded, count_segmented_checkpointed_recorded,
    count_segmented_sharded_recorded, count_sharded, count_sharded_recorded, priority_wedge_work,
    segmented_profile, segmented_wedge_weights, try_count, try_count_priority,
    try_count_priority_parallel, try_count_ranked, try_count_ranked_parallel, try_count_recorded,
    try_count_sharded, tuned_chunk_count, tuned_chunk_count_from_latency, weight_p90, Invariant,
};
pub use incremental::IncrementalCounter;
pub use pair_matrix::PairMatrix;
pub use spec::{count_brute_force, count_dense_formula, count_via_spgemm};

/// Instrumentation layer re-export: recorders, counters, and run reports
/// (see [`bfly_telemetry`]).
pub use bfly_telemetry as telemetry;
