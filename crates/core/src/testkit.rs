//! Shared test fixtures and proptest strategies (feature `testkit`).
//!
//! The integration tests under `tests/` all need the same thing: a spread
//! of bipartite graphs across the regimes where butterfly counters
//! misbehave differently — uniform, power-law-ish skewed, star-heavy,
//! near-empty, and complete-biclique — generated deterministically from
//! the vendored RNG shim. Before this module each test file carried its
//! own copy of that battery; now they (and future differential harnesses)
//! share one.
//!
//! Enable with the `testkit` cargo feature; the module is test support,
//! not library API, and makes no stability promises.

use bfly_graph::generators::{chung_lu, uniform_exact, with_planted_biclique};
use bfly_graph::BipartiteGraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Upper bound per side used by the bounded [`arb_graph`] strategy.
pub const MAX_SIDE: u32 = 24;

/// Uniform random graph with exactly `nedges` distinct edges.
pub fn uniform_graph(m: usize, n: usize, nedges: usize, seed: u64) -> BipartiteGraph {
    uniform_exact(m, n, nedges, &mut StdRng::seed_from_u64(seed))
}

/// Power-law-ish skewed graph (Chung–Lu with exponent `exp` on both
/// sides); larger `exp` → heavier hubs.
pub fn skewed_graph(m: usize, n: usize, nedges: usize, exp: f64, seed: u64) -> BipartiteGraph {
    chung_lu(m, n, nedges, exp, exp, &mut StdRng::seed_from_u64(seed))
}

/// Star-heavy graph: `hubs` V1 vertices each adjacent to every V2 leaf,
/// plus a sprinkle of random background edges — the shape where one
/// partition side does catastrophically more wedge work than the other.
pub fn star_heavy_graph(hubs: usize, leaves: usize, noise: usize, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = hubs + noise.max(1);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for h in 0..hubs as u32 {
        for v in 0..leaves as u32 {
            edges.push((h, v));
        }
    }
    for _ in 0..noise {
        let u = hubs as u32 + rng.random_range(0..noise.max(1) as u32);
        let v = rng.random_range(0..leaves.max(1) as u32);
        edges.push((u, v));
    }
    BipartiteGraph::from_edges(m, leaves.max(1), &edges).expect("generated edges in range")
}

/// Near-empty graph: at most a handful of edges scattered over a large
/// vertex set (exercises the all-zero-degree paths).
pub fn near_empty_graph(m: usize, n: usize, nedges: usize, seed: u64) -> BipartiteGraph {
    uniform_exact(m, n, nedges.min(3), &mut StdRng::seed_from_u64(seed))
}

/// Complete biclique `K_{m,n}` — the densest regime, `C(m,2)·C(n,2)`
/// butterflies.
pub fn biclique(m: usize, n: usize) -> BipartiteGraph {
    BipartiteGraph::complete(m, n)
}

/// The named fixture battery: one representative per regime plus the
/// degenerate shapes every counter must survive. Deterministic across
/// runs (fixed seeds), so failures name a reproducible graph.
pub fn fixture_battery() -> Vec<(String, BipartiteGraph)> {
    let mut out: Vec<(String, BipartiteGraph)> = vec![
        ("uniform-20x20x80".into(), uniform_graph(20, 20, 80, 1001)),
        ("uniform-50x10x150".into(), uniform_graph(50, 10, 150, 1001)),
        ("uniform-10x60x200".into(), uniform_graph(10, 60, 200, 1001)),
        ("skewed-0.3".into(), skewed_graph(60, 45, 300, 0.3, 1002)),
        ("skewed-0.7".into(), skewed_graph(60, 45, 300, 0.7, 1002)),
        ("skewed-1.0".into(), skewed_graph(60, 45, 300, 1.0, 1002)),
        ("star-heavy".into(), star_heavy_graph(3, 40, 30, 1003)),
        ("near-empty".into(), near_empty_graph(40, 50, 3, 1004)),
        ("biclique-6x6".into(), biclique(6, 6)),
        ("biclique-2x12".into(), biclique(2, 12)),
        ("empty".into(), BipartiteGraph::empty(10, 10)),
        ("single-v1".into(), BipartiteGraph::complete(1, 20)),
        ("single-v2".into(), BipartiteGraph::complete(20, 1)),
    ];
    let matching: Vec<(u32, u32)> = (0..15).map(|i| (i, i)).collect();
    out.push((
        "perfect-matching".into(),
        BipartiteGraph::from_edges(15, 15, &matching).expect("matching edges in range"),
    ));
    let base = uniform_graph(40, 40, 100, 1005);
    out.push((
        "planted-biclique".into(),
        with_planted_biclique(&base, &[0, 1, 2, 3, 4, 5], &[10, 11, 12, 13]),
    ));
    out
}

/// Strategy: arbitrary simple bipartite graph with up to [`MAX_SIDE`]
/// vertices per side and up to 80 (pre-dedup) edges. This is the bounded
/// edge-list generator previously copy-pasted into each proptest file.
pub fn arb_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1..=MAX_SIDE, 1..=MAX_SIDE).prop_flat_map(|(m, n)| {
        proptest::collection::vec((0..m, 0..n), 0..80).prop_map(move |edges| {
            BipartiteGraph::from_edges(m as usize, n as usize, &edges)
                .expect("bounded edges are valid")
        })
    })
}

/// Strategy: a graph drawn from one of the five named regimes (uniform,
/// skewed, star-heavy, near-empty, complete-biclique), selected by the
/// generated `family` index with a generated seed — the differential
/// harness's input distribution. The shim has no `prop_oneof`, so the
/// union is a selector integer matched inside one `prop_map`.
pub fn arb_family_graph() -> impl Strategy<Value = BipartiteGraph> {
    (0u32..5, 0u64..u64::MAX).prop_map(|(family, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        match family {
            0 => {
                let m = rng.random_range(2..40usize);
                let n = rng.random_range(2..40usize);
                let e = rng.random_range(0..=(m * n / 2));
                uniform_exact(m, n, e, &mut rng)
            }
            1 => {
                let m = rng.random_range(4..50usize);
                let n = rng.random_range(4..50usize);
                let e = rng.random_range(0..=(m * n / 3));
                let exp = 0.3 + 0.7 * rng.random_f64();
                chung_lu(m, n, e, exp, exp, &mut rng)
            }
            2 => {
                let hubs = rng.random_range(1..4usize);
                let leaves = rng.random_range(2..30usize);
                let noise = rng.random_range(0..20usize);
                star_heavy_graph(hubs, leaves, noise, rng.next_u64())
            }
            3 => {
                let m = rng.random_range(1..60usize);
                let n = rng.random_range(1..60usize);
                let e = rng.random_range(0..=3usize).min(m * n);
                uniform_exact(m, n, e, &mut rng)
            }
            _ => {
                let m = rng.random_range(1..10usize);
                let n = rng.random_range(1..10usize);
                BipartiteGraph::complete(m, n)
            }
        }
    })
}

/// Deterministic fault-injection wrapper over an in-memory byte stream —
/// dependency-free (std only), for driving loaders and CLIs through the
/// I/O failure modes a real filesystem produces:
///
/// * **short reads** ([`FaultyReader::with_chunk`]): each `read` returns
///   at most `chunk` bytes, so multi-byte tokens straddle call
///   boundaries;
/// * **interleaved errors** ([`FaultyReader::with_error_at`]): one
///   `std::io::Error` of the given kind fires when the cursor reaches
///   byte `n`; `ErrorKind::Interrupted` models a retryable signal (std's
///   own readers retry it), anything else a hard failure the consumer
///   must surface;
/// * **truncation** ([`FaultyReader::with_truncation`]): clean EOF at
///   byte `n`, as if the file were cut mid-write;
/// * **slowness** ([`FaultyReader::with_delay`]): sleep before each
///   `read`, modelling a congested pipe or cold storage — combined with
///   `with_chunk` this starves a consumer for a controllable wall-clock
///   span (the stall-watchdog tests drive on it);
/// * **fault schedules** ([`FaultyReader::with_fault_schedule`],
///   [`FaultyReader::with_transient_at`]): a deterministic list of
///   [`ScheduledFault`]s — each arms at a byte offset and fires a fixed
///   number of times (transient-N-times-then-succeed) or forever — the
///   vocabulary the retry-policy and kill-and-resume tests drive on;
///   [`seeded_fault_schedule`] derives a reproducible schedule from a
///   seed.
#[derive(Debug, Clone)]
pub struct FaultyReader {
    data: Vec<u8>,
    pos: usize,
    chunk: Option<usize>,
    error_at: Option<(usize, std::io::ErrorKind)>,
    fired: bool,
    truncate_at: Option<usize>,
    delay: Option<std::time::Duration>,
    schedule: Vec<ScheduledFault>,
}

/// One entry of a deterministic fault schedule (see
/// [`FaultyReader::with_fault_schedule`] and [`FaultyWriter`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Cursor offset (bytes produced/consumed so far) at which the
    /// fault arms.
    pub at: usize,
    /// The `std::io::ErrorKind` raised. `Interrupted`/`WouldBlock`/
    /// `TimedOut` model transient faults a retry policy should absorb;
    /// anything else is a hard failure.
    pub kind: std::io::ErrorKind,
    /// How many calls fail once armed before I/O proceeds —
    /// transient-N-times-then-succeed. `usize::MAX` never stops firing
    /// (a permanently broken region).
    pub times: usize,
}

impl ScheduledFault {
    /// Transient fault: `Interrupted`, `times` times, at offset `at`.
    pub fn transient(at: usize, times: usize) -> Self {
        ScheduledFault {
            at,
            kind: std::io::ErrorKind::Interrupted,
            times,
        }
    }

    /// Permanent fault of `kind` at offset `at`.
    pub fn hard(at: usize, kind: std::io::ErrorKind) -> Self {
        ScheduledFault {
            at,
            kind,
            times: usize::MAX,
        }
    }
}

/// Derive a reproducible fault schedule from a seed: `count` transient
/// faults (1–3 firings each) at xorshift-chosen offsets within
/// `0..len`. Deterministic — the same seed always yields the same
/// schedule, so a failing chaos test names a replayable scenario.
pub fn seeded_fault_schedule(seed: u64, len: usize, count: usize) -> Vec<ScheduledFault> {
    // Golden-ratio mixing keeps adjacent seeds from collapsing into the
    // same xorshift state (a bare `seed | 1` would alias 2k and 2k+1).
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let at = if len == 0 { 0 } else { (next() as usize) % len };
        let times = 1 + (next() as usize) % 3;
        out.push(ScheduledFault::transient(at, times));
    }
    out.sort_by_key(|f| f.at);
    out
}

impl FaultyReader {
    /// A well-behaved reader over `data`; compose faults with the
    /// builder methods.
    pub fn new(data: impl Into<Vec<u8>>) -> Self {
        FaultyReader {
            data: data.into(),
            pos: 0,
            chunk: None,
            error_at: None,
            fired: false,
            truncate_at: None,
            delay: None,
            schedule: Vec::new(),
        }
    }

    /// Return at most `chunk` bytes per `read` call (`chunk ≥ 1`).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = Some(chunk.max(1));
        self
    }

    /// Fail with `kind` (once) when the cursor reaches byte `n`.
    pub fn with_error_at(mut self, n: usize, kind: std::io::ErrorKind) -> Self {
        self.error_at = Some((n, kind));
        self
    }

    /// Report EOF once `n` bytes have been produced.
    pub fn with_truncation(mut self, n: usize) -> Self {
        self.truncate_at = Some(n);
        self
    }

    /// Sleep `delay` before every `read` call (a slow pipe). Pair with
    /// [`FaultyReader::with_chunk`] to stretch a fixed payload over a
    /// chosen wall-clock span.
    pub fn with_delay(mut self, delay: std::time::Duration) -> Self {
        self.delay = Some(delay);
        self
    }

    /// Install a deterministic fault schedule (entries checked in
    /// order on every `read`; see [`ScheduledFault`]).
    pub fn with_fault_schedule(mut self, schedule: Vec<ScheduledFault>) -> Self {
        self.schedule = schedule;
        self
    }

    /// Shorthand: fail with `Interrupted` `times` times once the cursor
    /// reaches byte `n`, then succeed — the transient-then-recover
    /// shape a retry policy must absorb.
    pub fn with_transient_at(mut self, n: usize, times: usize) -> Self {
        self.schedule.push(ScheduledFault::transient(n, times));
        self
    }
}

impl std::io::Read for FaultyReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(delay) = self.delay {
            std::thread::sleep(delay);
        }
        if let Some((n, kind)) = self.error_at {
            if !self.fired && self.pos >= n {
                self.fired = true;
                return Err(std::io::Error::new(kind, "injected fault"));
            }
        }
        let pos = self.pos;
        for f in &mut self.schedule {
            if pos >= f.at && f.times > 0 {
                if f.times != usize::MAX {
                    f.times -= 1;
                }
                return Err(std::io::Error::new(f.kind, "scheduled fault"));
            }
        }
        let end = self.truncate_at.unwrap_or(usize::MAX).min(self.data.len());
        if self.pos >= end || buf.is_empty() {
            return Ok(0);
        }
        let take = (end - self.pos)
            .min(buf.len())
            .min(self.chunk.unwrap_or(usize::MAX));
        buf[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }
}

/// Fault-injecting [`std::io::Write`] counterpart of [`FaultyReader`]:
/// collects bytes in memory and fails according to the same
/// [`ScheduledFault`] vocabulary — how atomic-write paths (converter
/// assembly, checkpoint persist) are driven through partial-write and
/// error-mid-write scenarios without touching a real filesystem.
///
/// * **scheduled faults** ([`FaultyWriter::with_fault_schedule`],
///   [`FaultyWriter::with_transient_at`]): arm at a written-byte offset,
///   fire `times` calls, then let writes proceed;
/// * **short writes** ([`FaultyWriter::with_chunk`]): accept at most
///   `chunk` bytes per `write` call, so callers that ignore partial
///   writes corrupt their output visibly;
/// * **truncation** ([`FaultyWriter::with_capacity_limit`]): report
///   `WriteZero`-style disk-full once `n` bytes have been accepted — a
///   crash/ENOSPC mid-write leaves exactly the accepted prefix, which
///   is what a torn (non-atomic) output file looks like.
#[derive(Debug, Clone, Default)]
pub struct FaultyWriter {
    data: Vec<u8>,
    chunk: Option<usize>,
    capacity: Option<usize>,
    schedule: Vec<ScheduledFault>,
}

impl FaultyWriter {
    /// A well-behaved in-memory writer; compose faults with the builder
    /// methods.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accept at most `chunk` bytes per `write` call (`chunk ≥ 1`).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = Some(chunk.max(1));
        self
    }

    /// Fail with `WriteZero` ("no space") once `n` bytes are stored.
    pub fn with_capacity_limit(mut self, n: usize) -> Self {
        self.capacity = Some(n);
        self
    }

    /// Install a deterministic fault schedule (offsets measure bytes
    /// accepted so far).
    pub fn with_fault_schedule(mut self, schedule: Vec<ScheduledFault>) -> Self {
        self.schedule = schedule;
        self
    }

    /// Shorthand: fail with `Interrupted` `times` times once `n` bytes
    /// are stored, then succeed.
    pub fn with_transient_at(mut self, n: usize, times: usize) -> Self {
        self.schedule.push(ScheduledFault::transient(n, times));
        self
    }

    /// Bytes accepted so far.
    pub fn written(&self) -> &[u8] {
        &self.data
    }

    /// Consume the writer, returning the accepted bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.data
    }
}

impl std::io::Write for FaultyWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let pos = self.data.len();
        for f in &mut self.schedule {
            if pos >= f.at && f.times > 0 {
                if f.times != usize::MAX {
                    f.times -= 1;
                }
                return Err(std::io::Error::new(f.kind, "scheduled fault"));
            }
        }
        if let Some(cap) = self.capacity {
            if pos >= cap {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "injected disk-full",
                ));
            }
            let take = (cap - pos)
                .min(buf.len())
                .min(self.chunk.unwrap_or(usize::MAX));
            self.data.extend_from_slice(&buf[..take]);
            return Ok(take);
        }
        let take = buf.len().min(self.chunk.unwrap_or(usize::MAX));
        self.data.extend_from_slice(&buf[..take]);
        Ok(take)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn faulty_reader_short_reads_deliver_everything() {
        let mut r = FaultyReader::new(&b"hello world"[..]).with_chunk(3);
        let mut out = String::new();
        r.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello world");
    }

    #[test]
    fn faulty_reader_truncates_cleanly() {
        let mut r = FaultyReader::new(&b"0123456789"[..]).with_truncation(4);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"0123");
    }

    #[test]
    fn faulty_reader_injects_hard_errors_and_retryable_interrupts() {
        let mut r = FaultyReader::new(&b"abcdef"[..])
            .with_chunk(2)
            .with_error_at(4, std::io::ErrorKind::UnexpectedEof);
        let mut out = Vec::new();
        let err = r.read_to_end(&mut out).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        assert_eq!(out, b"abcd");
        // Interrupted errors are transparently retried by read_to_end.
        let mut r = FaultyReader::new(&b"abcdef"[..])
            .with_chunk(2)
            .with_error_at(2, std::io::ErrorKind::Interrupted);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"abcdef");
    }

    #[test]
    fn scheduled_transient_fault_fires_then_clears() {
        // Two Interrupted firings at byte 3, then the stream completes:
        // read_to_end retries Interrupted transparently, so the full
        // payload arrives and the schedule is exhausted.
        let mut r = FaultyReader::new(&b"abcdef"[..])
            .with_chunk(2)
            .with_fault_schedule(vec![ScheduledFault::transient(3, 2)]);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"abcdef");
    }

    #[test]
    fn scheduled_hard_fault_never_clears() {
        let mut r = FaultyReader::new(&b"abcdef"[..])
            .with_chunk(2)
            .with_fault_schedule(vec![ScheduledFault::hard(
                4,
                std::io::ErrorKind::UnexpectedEof,
            )]);
        let mut out = Vec::new();
        let err = r.read_to_end(&mut out).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        assert_eq!(out, b"abcd");
        // Retrying does not help: the fault is permanent.
        let err = r.read_to_end(&mut out).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn seeded_fault_schedule_is_deterministic() {
        let a = seeded_fault_schedule(42, 1000, 5);
        let b = seeded_fault_schedule(42, 1000, 5);
        assert_eq!(a.len(), 5);
        for (fa, fb) in a.iter().zip(b.iter()) {
            assert_eq!(fa.at, fb.at);
            assert_eq!(fa.times, fb.times);
            assert!(fa.at < 1000);
            assert!((1..=3).contains(&fa.times));
        }
        // Offsets are sorted so faults fire in stream order.
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        // A different seed lands different offsets (overwhelmingly likely).
        let c = seeded_fault_schedule(43, 1000, 5);
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.at != y.at));
    }

    #[test]
    fn seeded_schedule_streams_survive_retrying_readers() {
        // A reader carrying a purely-transient seeded schedule always
        // delivers the full payload through read_to_end's retry loop.
        let payload: Vec<u8> = (0..512u32).map(|i| (i % 251) as u8).collect();
        for seed in [1u64, 7, 99] {
            let sched = seeded_fault_schedule(seed, payload.len(), 4);
            let mut r = FaultyReader::new(&payload[..])
                .with_chunk(13)
                .with_fault_schedule(sched);
            let mut out = Vec::new();
            r.read_to_end(&mut out).unwrap();
            assert_eq!(out, payload, "seed {seed}");
        }
    }

    #[test]
    fn faulty_writer_collects_bytes_and_honors_chunking() {
        use std::io::Write;
        let mut w = FaultyWriter::new().with_chunk(3);
        w.write_all(b"hello world").unwrap();
        assert_eq!(w.written(), b"hello world");
        assert_eq!(w.into_inner(), b"hello world");
    }

    #[test]
    fn faulty_writer_transient_then_succeeds() {
        use std::io::Write;
        // write_all does NOT retry Interrupted for us the way
        // read_to_end does, so drive it manually like a retry loop would.
        let mut w = FaultyWriter::new().with_chunk(2).with_transient_at(4, 2);
        let data = b"abcdefgh";
        let mut off = 0;
        let mut interrupts = 0;
        while off < data.len() {
            match w.write(&data[off..]) {
                Ok(n) => off += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => interrupts += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(interrupts, 2);
        assert_eq!(w.written(), data);
    }

    #[test]
    fn faulty_writer_disk_full_preserves_prefix() {
        use std::io::Write;
        let mut w = FaultyWriter::new().with_capacity_limit(6);
        let err = w.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);
        // Exactly the accepted prefix survives — what a torn non-atomic
        // output file looks like after ENOSPC.
        assert_eq!(w.written(), b"012345");
    }

    #[test]
    fn battery_is_deterministic_and_nonempty() {
        let a = fixture_battery();
        let b = fixture_battery();
        assert!(a.len() >= 10);
        for ((na, ga), (nb, gb)) in a.iter().zip(b.iter()) {
            assert_eq!(na, nb);
            assert_eq!(ga, gb, "{na} not deterministic");
        }
        // At least one fixture from each interesting regime is non-trivial.
        assert!(a
            .iter()
            .any(|(n, g)| n.starts_with("skewed") && g.nedges() > 0));
        assert!(a.iter().any(|(n, g)| n == "empty" && g.nedges() == 0));
    }

    #[test]
    fn star_heavy_has_a_dominant_side() {
        let g = star_heavy_graph(2, 30, 10, 7);
        // The hubs see every leaf; wedge work through V1 dwarfs V2's.
        assert!(g.wedges_through_v1() > g.wedges_through_v2());
    }
}
