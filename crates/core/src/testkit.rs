//! Shared test fixtures and proptest strategies (feature `testkit`).
//!
//! The integration tests under `tests/` all need the same thing: a spread
//! of bipartite graphs across the regimes where butterfly counters
//! misbehave differently — uniform, power-law-ish skewed, star-heavy,
//! near-empty, and complete-biclique — generated deterministically from
//! the vendored RNG shim. Before this module each test file carried its
//! own copy of that battery; now they (and future differential harnesses)
//! share one.
//!
//! Enable with the `testkit` cargo feature; the module is test support,
//! not library API, and makes no stability promises.

use bfly_graph::generators::{chung_lu, uniform_exact, with_planted_biclique};
use bfly_graph::BipartiteGraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Upper bound per side used by the bounded [`arb_graph`] strategy.
pub const MAX_SIDE: u32 = 24;

/// Uniform random graph with exactly `nedges` distinct edges.
pub fn uniform_graph(m: usize, n: usize, nedges: usize, seed: u64) -> BipartiteGraph {
    uniform_exact(m, n, nedges, &mut StdRng::seed_from_u64(seed))
}

/// Power-law-ish skewed graph (Chung–Lu with exponent `exp` on both
/// sides); larger `exp` → heavier hubs.
pub fn skewed_graph(m: usize, n: usize, nedges: usize, exp: f64, seed: u64) -> BipartiteGraph {
    chung_lu(m, n, nedges, exp, exp, &mut StdRng::seed_from_u64(seed))
}

/// Star-heavy graph: `hubs` V1 vertices each adjacent to every V2 leaf,
/// plus a sprinkle of random background edges — the shape where one
/// partition side does catastrophically more wedge work than the other.
pub fn star_heavy_graph(hubs: usize, leaves: usize, noise: usize, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = hubs + noise.max(1);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for h in 0..hubs as u32 {
        for v in 0..leaves as u32 {
            edges.push((h, v));
        }
    }
    for _ in 0..noise {
        let u = hubs as u32 + rng.random_range(0..noise.max(1) as u32);
        let v = rng.random_range(0..leaves.max(1) as u32);
        edges.push((u, v));
    }
    BipartiteGraph::from_edges(m, leaves.max(1), &edges).expect("generated edges in range")
}

/// Near-empty graph: at most a handful of edges scattered over a large
/// vertex set (exercises the all-zero-degree paths).
pub fn near_empty_graph(m: usize, n: usize, nedges: usize, seed: u64) -> BipartiteGraph {
    uniform_exact(m, n, nedges.min(3), &mut StdRng::seed_from_u64(seed))
}

/// Complete biclique `K_{m,n}` — the densest regime, `C(m,2)·C(n,2)`
/// butterflies.
pub fn biclique(m: usize, n: usize) -> BipartiteGraph {
    BipartiteGraph::complete(m, n)
}

/// The named fixture battery: one representative per regime plus the
/// degenerate shapes every counter must survive. Deterministic across
/// runs (fixed seeds), so failures name a reproducible graph.
pub fn fixture_battery() -> Vec<(String, BipartiteGraph)> {
    let mut out: Vec<(String, BipartiteGraph)> = vec![
        ("uniform-20x20x80".into(), uniform_graph(20, 20, 80, 1001)),
        ("uniform-50x10x150".into(), uniform_graph(50, 10, 150, 1001)),
        ("uniform-10x60x200".into(), uniform_graph(10, 60, 200, 1001)),
        ("skewed-0.3".into(), skewed_graph(60, 45, 300, 0.3, 1002)),
        ("skewed-0.7".into(), skewed_graph(60, 45, 300, 0.7, 1002)),
        ("skewed-1.0".into(), skewed_graph(60, 45, 300, 1.0, 1002)),
        ("star-heavy".into(), star_heavy_graph(3, 40, 30, 1003)),
        ("near-empty".into(), near_empty_graph(40, 50, 3, 1004)),
        ("biclique-6x6".into(), biclique(6, 6)),
        ("biclique-2x12".into(), biclique(2, 12)),
        ("empty".into(), BipartiteGraph::empty(10, 10)),
        ("single-v1".into(), BipartiteGraph::complete(1, 20)),
        ("single-v2".into(), BipartiteGraph::complete(20, 1)),
    ];
    let matching: Vec<(u32, u32)> = (0..15).map(|i| (i, i)).collect();
    out.push((
        "perfect-matching".into(),
        BipartiteGraph::from_edges(15, 15, &matching).expect("matching edges in range"),
    ));
    let base = uniform_graph(40, 40, 100, 1005);
    out.push((
        "planted-biclique".into(),
        with_planted_biclique(&base, &[0, 1, 2, 3, 4, 5], &[10, 11, 12, 13]),
    ));
    out
}

/// Strategy: arbitrary simple bipartite graph with up to [`MAX_SIDE`]
/// vertices per side and up to 80 (pre-dedup) edges. This is the bounded
/// edge-list generator previously copy-pasted into each proptest file.
pub fn arb_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1..=MAX_SIDE, 1..=MAX_SIDE).prop_flat_map(|(m, n)| {
        proptest::collection::vec((0..m, 0..n), 0..80).prop_map(move |edges| {
            BipartiteGraph::from_edges(m as usize, n as usize, &edges)
                .expect("bounded edges are valid")
        })
    })
}

/// Strategy: a graph drawn from one of the five named regimes (uniform,
/// skewed, star-heavy, near-empty, complete-biclique), selected by the
/// generated `family` index with a generated seed — the differential
/// harness's input distribution. The shim has no `prop_oneof`, so the
/// union is a selector integer matched inside one `prop_map`.
pub fn arb_family_graph() -> impl Strategy<Value = BipartiteGraph> {
    (0u32..5, 0u64..u64::MAX).prop_map(|(family, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        match family {
            0 => {
                let m = rng.random_range(2..40usize);
                let n = rng.random_range(2..40usize);
                let e = rng.random_range(0..=(m * n / 2));
                uniform_exact(m, n, e, &mut rng)
            }
            1 => {
                let m = rng.random_range(4..50usize);
                let n = rng.random_range(4..50usize);
                let e = rng.random_range(0..=(m * n / 3));
                let exp = 0.3 + 0.7 * rng.random_f64();
                chung_lu(m, n, e, exp, exp, &mut rng)
            }
            2 => {
                let hubs = rng.random_range(1..4usize);
                let leaves = rng.random_range(2..30usize);
                let noise = rng.random_range(0..20usize);
                star_heavy_graph(hubs, leaves, noise, rng.next_u64())
            }
            3 => {
                let m = rng.random_range(1..60usize);
                let n = rng.random_range(1..60usize);
                let e = rng.random_range(0..=3usize).min(m * n);
                uniform_exact(m, n, e, &mut rng)
            }
            _ => {
                let m = rng.random_range(1..10usize);
                let n = rng.random_range(1..10usize);
                BipartiteGraph::complete(m, n)
            }
        }
    })
}

/// Deterministic fault-injection wrapper over an in-memory byte stream —
/// dependency-free (std only), for driving loaders and CLIs through the
/// I/O failure modes a real filesystem produces:
///
/// * **short reads** ([`FaultyReader::with_chunk`]): each `read` returns
///   at most `chunk` bytes, so multi-byte tokens straddle call
///   boundaries;
/// * **interleaved errors** ([`FaultyReader::with_error_at`]): one
///   `std::io::Error` of the given kind fires when the cursor reaches
///   byte `n`; `ErrorKind::Interrupted` models a retryable signal (std's
///   own readers retry it), anything else a hard failure the consumer
///   must surface;
/// * **truncation** ([`FaultyReader::with_truncation`]): clean EOF at
///   byte `n`, as if the file were cut mid-write;
/// * **slowness** ([`FaultyReader::with_delay`]): sleep before each
///   `read`, modelling a congested pipe or cold storage — combined with
///   `with_chunk` this starves a consumer for a controllable wall-clock
///   span (the stall-watchdog tests drive on it).
#[derive(Debug, Clone)]
pub struct FaultyReader {
    data: Vec<u8>,
    pos: usize,
    chunk: Option<usize>,
    error_at: Option<(usize, std::io::ErrorKind)>,
    fired: bool,
    truncate_at: Option<usize>,
    delay: Option<std::time::Duration>,
}

impl FaultyReader {
    /// A well-behaved reader over `data`; compose faults with the
    /// builder methods.
    pub fn new(data: impl Into<Vec<u8>>) -> Self {
        FaultyReader {
            data: data.into(),
            pos: 0,
            chunk: None,
            error_at: None,
            fired: false,
            truncate_at: None,
            delay: None,
        }
    }

    /// Return at most `chunk` bytes per `read` call (`chunk ≥ 1`).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = Some(chunk.max(1));
        self
    }

    /// Fail with `kind` (once) when the cursor reaches byte `n`.
    pub fn with_error_at(mut self, n: usize, kind: std::io::ErrorKind) -> Self {
        self.error_at = Some((n, kind));
        self
    }

    /// Report EOF once `n` bytes have been produced.
    pub fn with_truncation(mut self, n: usize) -> Self {
        self.truncate_at = Some(n);
        self
    }

    /// Sleep `delay` before every `read` call (a slow pipe). Pair with
    /// [`FaultyReader::with_chunk`] to stretch a fixed payload over a
    /// chosen wall-clock span.
    pub fn with_delay(mut self, delay: std::time::Duration) -> Self {
        self.delay = Some(delay);
        self
    }
}

impl std::io::Read for FaultyReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(delay) = self.delay {
            std::thread::sleep(delay);
        }
        if let Some((n, kind)) = self.error_at {
            if !self.fired && self.pos >= n {
                self.fired = true;
                return Err(std::io::Error::new(kind, "injected fault"));
            }
        }
        let end = self.truncate_at.unwrap_or(usize::MAX).min(self.data.len());
        if self.pos >= end || buf.is_empty() {
            return Ok(0);
        }
        let take = (end - self.pos)
            .min(buf.len())
            .min(self.chunk.unwrap_or(usize::MAX));
        buf[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn faulty_reader_short_reads_deliver_everything() {
        let mut r = FaultyReader::new(&b"hello world"[..]).with_chunk(3);
        let mut out = String::new();
        r.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello world");
    }

    #[test]
    fn faulty_reader_truncates_cleanly() {
        let mut r = FaultyReader::new(&b"0123456789"[..]).with_truncation(4);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"0123");
    }

    #[test]
    fn faulty_reader_injects_hard_errors_and_retryable_interrupts() {
        let mut r = FaultyReader::new(&b"abcdef"[..])
            .with_chunk(2)
            .with_error_at(4, std::io::ErrorKind::UnexpectedEof);
        let mut out = Vec::new();
        let err = r.read_to_end(&mut out).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        assert_eq!(out, b"abcd");
        // Interrupted errors are transparently retried by read_to_end.
        let mut r = FaultyReader::new(&b"abcdef"[..])
            .with_chunk(2)
            .with_error_at(2, std::io::ErrorKind::Interrupted);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"abcdef");
    }

    #[test]
    fn battery_is_deterministic_and_nonempty() {
        let a = fixture_battery();
        let b = fixture_battery();
        assert!(a.len() >= 10);
        for ((na, ga), (nb, gb)) in a.iter().zip(b.iter()) {
            assert_eq!(na, nb);
            assert_eq!(ga, gb, "{na} not deterministic");
        }
        // At least one fixture from each interesting regime is non-trivial.
        assert!(a
            .iter()
            .any(|(n, g)| n.starts_with("skewed") && g.nedges() > 0));
        assert!(a.iter().any(|(n, g)| n == "empty" && g.nedges() == 0));
    }

    #[test]
    fn star_heavy_has_a_dominant_side() {
        let g = star_heavy_graph(2, 30, 10, 7);
        // The hubs see every leaf; wedge work through V1 dwarfs V2's.
        assert!(g.wedges_through_v1() > g.wedges_through_v2());
    }
}
