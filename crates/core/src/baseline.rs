//! Baseline counting algorithms the paper positions against.
//!
//! * [`count_hash_aggregation`] — the Wang et al. 2014 "rectangle
//!   counting" shape: aggregate wedges per endpoint pair in a hash map
//!   instead of a dense accumulator. Same asymptotics as the family,
//!   different constant factors (the SPA-vs-hash ablation).
//! * [`count_vertex_priority`] — the degree-ordered counter in the style
//!   of Wang et al. (VLDB'19) / Shi & Shun's ParButterfly: wedges are only
//!   expanded from each butterfly's *minimum-priority* vertex, where
//!   priority is a total order by non-increasing degree over both sides.
//!   Every butterfly is charged exactly once, and high-degree hubs are
//!   never wedge-expanded from below — the optimisation the paper's §VI
//!   names as future work.
//! * [`approx_count_vertex_sampling`] / [`approx_count_edge_sampling`] —
//!   unbiased estimators in the style of Sanei-Mehri et al. (KDD'18),
//!   using exact local counts on sampled vertices/edges.

use crate::edge_support::edge_supports;
use crate::vertex_counts::butterflies_per_vertex;
use bfly_graph::ordering::global_degree_ranks;
use bfly_graph::{BipartiteGraph, Side};
use bfly_sparse::{choose2, Spa};
use rand::Rng;
use std::collections::HashMap;

/// Exact count via per-pair wedge aggregation in a `HashMap` (the
/// work-space-lean variant of Wang et al.; contrast with the SPA used by
/// the family).
pub fn count_hash_aggregation(g: &BipartiteGraph) -> u64 {
    // Aggregate over the smaller side's pairs for the better constant,
    // mirroring the paper's partition-size guidance.
    let (part_adj, other_adj) = if g.nv2() <= g.nv1() {
        (g.biadjacency_t(), g.biadjacency())
    } else {
        (g.biadjacency(), g.biadjacency_t())
    };
    let n = part_adj.nrows();
    let mut total = 0u64;
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for k in 0..n {
        let k32 = k as u32;
        counts.clear();
        for &j in part_adj.row(k) {
            let row = other_adj.row(j as usize);
            let cut = row.partition_point(|&c| c <= k32);
            for &c in &row[cut..] {
                *counts.entry(c).or_insert(0) += 1;
            }
        }
        for &cnt in counts.values() {
            total += choose2(cnt);
        }
    }
    total
}

/// Exact count with degree-based vertex priorities.
///
/// Rank every vertex of `V1 ∪ V2` by non-increasing degree. For each start
/// vertex `u`, expand only wedges `u – j – w` whose middle and far vertices
/// both out-rank `u` (`rank(j) > rank(u)`, `rank(w) > rank(u)`); then add
/// `Σ_w C(cnt[w], 2)`. A butterfly `{u, w} × {j, j'}` is counted exactly
/// once: from its minimum-rank vertex, and only there.
pub fn count_vertex_priority(g: &BipartiteGraph) -> u64 {
    let (rank_v1, rank_v2) = global_degree_ranks(g);
    let a = g.biadjacency();
    let at = g.biadjacency_t();
    let mut total = 0u64;
    let mut spa = Spa::<u64>::new(g.nv1().max(g.nv2()));

    // Starts in V1: wedge points in V2, far endpoints in V1.
    for u in 0..g.nv1() {
        let ru = rank_v1[u];
        for &j in a.row(u) {
            if rank_v2[j as usize] <= ru {
                continue;
            }
            for &w in at.row(j as usize) {
                if w as usize != u && rank_v1[w as usize] > ru {
                    spa.scatter(w, 1);
                }
            }
        }
        for (_, cnt) in spa.entries() {
            total += choose2(cnt);
        }
        spa.clear();
    }
    // Starts in V2: wedge points in V1, far endpoints in V2.
    for v in 0..g.nv2() {
        let rv = rank_v2[v];
        for &j in at.row(v) {
            if rank_v1[j as usize] <= rv {
                continue;
            }
            for &w in a.row(j as usize) {
                if w as usize != v && rank_v2[w as usize] > rv {
                    spa.scatter(w, 1);
                }
            }
        }
        for (_, cnt) in spa.entries() {
            total += choose2(cnt);
        }
        spa.clear();
    }
    total
}

/// Unbiased estimate by vertex sampling: draw `samples` vertices of `V1`
/// uniformly with replacement, compute each one's exact butterfly count
/// `b_u`, and return `(|V1| / 2) · mean(b_u)` (every butterfly has exactly
/// two V1 vertices, so `E[b_u] = 2Ξ/|V1|`).
pub fn approx_count_vertex_sampling<R: Rng>(
    g: &BipartiteGraph,
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    if g.nv1() == 0 {
        return 0.0;
    }
    // Exact local counts reuse the per-vertex machinery.
    let counts = butterflies_per_vertex(g, Side::V1);
    let mut acc = 0f64;
    for _ in 0..samples {
        let u = rng.random_range(0..g.nv1());
        acc += counts[u] as f64;
    }
    (g.nv1() as f64 / 2.0) * (acc / samples as f64)
}

/// Unbiased estimate by edge sampling: draw `samples` edges uniformly with
/// replacement, compute each one's exact support, and return
/// `(|E| / 4) · mean(supp)` (every butterfly has exactly four edges).
pub fn approx_count_edge_sampling<R: Rng>(g: &BipartiteGraph, samples: usize, rng: &mut R) -> f64 {
    assert!(samples > 0, "need at least one sample");
    if g.nedges() == 0 {
        return 0.0;
    }
    let supports = edge_supports(g);
    let mut acc = 0f64;
    for _ in 0..samples {
        let e = rng.random_range(0..supports.len());
        acc += supports[e] as f64;
    }
    (g.nedges() as f64 / 4.0) * (acc / samples as f64)
}

/// Unbiased estimate by wedge sampling: draw `samples` uniform wedges
/// (random V2 wedge point with probability proportional to `C(deg, 2)`,
/// then a uniform endpoint pair), count the butterflies each wedge closes
/// into (`|N(u) ∩ N(w)| − 1`), and return `W · mean / 2` where `W` is the
/// total wedge count — each butterfly contains exactly two wedges with V2
/// wedge points.
pub fn approx_count_wedge_sampling<R: Rng>(g: &BipartiteGraph, samples: usize, rng: &mut R) -> f64 {
    assert!(samples > 0, "need at least one sample");
    // Cumulative wedge weights over V2 vertices.
    let mut cumulative = Vec::with_capacity(g.nv2());
    let mut total_wedges = 0u64;
    for v in 0..g.nv2() {
        total_wedges += bfly_sparse::choose2(g.deg_v2(v) as u64);
        cumulative.push(total_wedges);
    }
    if total_wedges == 0 {
        return 0.0;
    }
    let a = g.biadjacency();
    let mut acc = 0f64;
    for _ in 0..samples {
        // Wedge point v ∝ C(deg v, 2).
        let t = rng.random_range(0..total_wedges);
        let v = cumulative.partition_point(|&c| c <= t);
        let nv = g.neighbors_v2(v);
        // Uniform endpoint pair u ≠ w from N(v).
        let i = rng.random_range(0..nv.len());
        let mut j = rng.random_range(0..nv.len() - 1);
        if j >= i {
            j += 1;
        }
        let (u, w) = (nv[i] as usize, nv[j] as usize);
        let closures = a.row_intersection_size(u, w) as f64 - 1.0;
        acc += closures;
    }
    total_wedges as f64 * (acc / samples as f64) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::count_via_spgemm;
    use bfly_graph::generators::{chung_lu, uniform_exact};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hash_aggregation_matches_spec() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..5 {
            let g = uniform_exact(40, 25, 180, &mut rng);
            assert_eq!(count_hash_aggregation(&g), count_via_spgemm(&g));
        }
        // Both orientations of the side-selection heuristic.
        let tall = uniform_exact(50, 10, 120, &mut rng);
        assert_eq!(count_hash_aggregation(&tall), count_via_spgemm(&tall));
    }

    #[test]
    fn vertex_priority_matches_spec() {
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..5 {
            let g = chung_lu(50, 40, 250, 0.7, 0.7, &mut rng);
            assert_eq!(count_vertex_priority(&g), count_via_spgemm(&g));
        }
        assert_eq!(count_vertex_priority(&BipartiteGraph::complete(4, 4)), 36);
        assert_eq!(count_vertex_priority(&BipartiteGraph::empty(5, 5)), 0);
    }

    #[test]
    fn vertex_priority_counts_each_butterfly_once_on_regular_graphs() {
        // Degree-regular graphs maximise rank ties; the tie-broken total
        // order must still charge each butterfly exactly once.
        let g = BipartiteGraph::complete(5, 5);
        assert_eq!(count_vertex_priority(&g), 100); // C(5,2)²
    }

    #[test]
    fn sampling_estimators_are_close_on_moderate_graphs() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = chung_lu(80, 80, 600, 0.6, 0.6, &mut rng);
        let exact = count_via_spgemm(&g) as f64;
        assert!(exact > 0.0);
        let v = approx_count_vertex_sampling(&g, 4000, &mut rng);
        let e = approx_count_edge_sampling(&g, 4000, &mut rng);
        assert!(
            (v - exact).abs() < exact * 0.35,
            "vertex estimate {v} vs exact {exact}"
        );
        assert!(
            (e - exact).abs() < exact * 0.35,
            "edge estimate {e} vs exact {exact}"
        );
    }

    #[test]
    fn sampling_exact_when_sampling_everything_uniformly() {
        // On a vertex-transitive graph every sample is identical, so even
        // one sample is exact.
        let g = BipartiteGraph::complete(4, 4);
        let mut rng = StdRng::seed_from_u64(34);
        let exact = count_via_spgemm(&g) as f64;
        assert_eq!(approx_count_vertex_sampling(&g, 1, &mut rng), exact);
        assert_eq!(approx_count_edge_sampling(&g, 1, &mut rng), exact);
    }

    #[test]
    fn estimators_handle_empty_graphs() {
        let g = BipartiteGraph::empty(0, 0);
        let mut rng = StdRng::seed_from_u64(35);
        assert_eq!(approx_count_vertex_sampling(&g, 10, &mut rng), 0.0);
        assert_eq!(approx_count_edge_sampling(&g, 10, &mut rng), 0.0);
        assert_eq!(approx_count_wedge_sampling(&g, 10, &mut rng), 0.0);
        // Wedge-free but non-empty graph.
        let matching = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        assert_eq!(approx_count_wedge_sampling(&matching, 10, &mut rng), 0.0);
    }

    #[test]
    fn wedge_sampling_is_exact_on_transitive_graphs() {
        // K_{4,4}: every wedge closes into the same number of butterflies,
        // so a single sample is exact.
        let g = BipartiteGraph::complete(4, 4);
        let mut rng = StdRng::seed_from_u64(36);
        let exact = count_via_spgemm(&g) as f64;
        assert_eq!(approx_count_wedge_sampling(&g, 1, &mut rng), exact);
    }

    #[test]
    fn wedge_sampling_converges() {
        let mut rng = StdRng::seed_from_u64(37);
        let g = chung_lu(60, 60, 420, 0.6, 0.6, &mut rng);
        let exact = count_via_spgemm(&g) as f64;
        assert!(exact > 0.0);
        let est = approx_count_wedge_sampling(&g, 8000, &mut rng);
        assert!(
            (est - exact).abs() < exact * 0.3,
            "estimate {est} vs exact {exact}"
        );
    }
}
