//! k-wing extraction and wing decomposition (paper §IV-C).
//!
//! A maximal subgraph `H` is a *k-wing* if every **edge** of `H` is
//! contained in at least `k` butterflies of `H` — the bipartite analogue of
//! k-truss. The paper's procedure (eqs. 25–27): compute the edge-support
//! matrix `S_w`, mask out edges with support `< k`, iterate to a fixed
//! point.
//!
//! * [`k_wing`] — wedge-expansion supports per round (production).
//! * [`k_wing_matrix`] — the literal eqs. 25–27 loop via SpGEMM (fidelity
//!   reference).
//! * [`wing_numbers`] — full decomposition: the largest `k` at which each
//!   edge survives, by whole-bucket peeling with support repair through
//!   the engine in [`super::parallel`] (for each butterfly destroyed by
//!   the removed frontier, its surviving edges lose one unit of support).
//!   The original single-edge heap formulation survives as
//!   [`wing_numbers_oracle`], a `testkit`-gated witness for the
//!   differential tests.

use crate::edge_support::{edge_supports, edge_supports_algebraic};
use bfly_graph::BipartiteGraph;
use bfly_sparse::Pattern;
use bfly_telemetry::{Counter, NoopRecorder, Recorder};

/// Result of a k-wing extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WingResult {
    /// Which edges (row-major order of the *original* graph) survive.
    pub keep: Vec<bool>,
    /// Number of peeling rounds until the fixed point.
    pub rounds: usize,
    /// The k-wing subgraph (original dimensions preserved).
    pub subgraph: BipartiteGraph,
}

fn peel_rounds<R, F>(g: &BipartiteGraph, k: u64, rec: &mut R, score: F) -> WingResult
where
    R: Recorder,
    F: Fn(&BipartiteGraph) -> Vec<u64>,
{
    let original_edges: Vec<(u32, u32)> = g.edges().collect();
    let mut keep = vec![true; original_edges.len()];
    let mut current = g.clone();
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        if R::ENABLED {
            rec.span_enter("wing_round");
            rec.incr(Counter::PeelRounds, 1);
            // Every surviving edge is re-scored from scratch this round.
            rec.incr(Counter::RecomputeEdges, current.nedges() as u64);
        }
        let supports = score(&current);
        // Map current-graph edge order back to original indices.
        let mut removed = 0u64;
        let mut cur_idx = 0usize;
        for (orig_idx, &(u, v)) in original_edges.iter().enumerate() {
            if !keep[orig_idx] {
                continue;
            }
            debug_assert!(current.has_edge(u, v));
            if supports[cur_idx] < k {
                keep[orig_idx] = false;
                removed += 1;
            }
            cur_idx += 1;
        }
        debug_assert_eq!(cur_idx, supports.len());
        if R::ENABLED {
            rec.incr(Counter::PeeledEdges, removed);
            rec.series_push("wing_removed_per_round", removed as f64);
        }
        if removed == 0 {
            if R::ENABLED {
                rec.span_exit("wing_round");
            }
            break;
        }
        let kept_edges: Vec<(u32, u32)> = original_edges
            .iter()
            .zip(&keep)
            .filter(|(_, &kp)| kp)
            .map(|(&e, _)| e)
            .collect();
        current = BipartiteGraph::from_edges(g.nv1(), g.nv2(), &kept_edges)
            .expect("kept edges are in range");
        if R::ENABLED {
            rec.span_exit("wing_round");
        }
    }
    WingResult {
        keep,
        rounds,
        subgraph: current,
    }
}

/// Extract the k-wing of `g` by iterated wedge-expansion edge scoring.
pub fn k_wing(g: &BipartiteGraph, k: u64) -> WingResult {
    k_wing_recorded(g, k, &mut NoopRecorder)
}

/// [`k_wing`] reporting round counts, removal volumes, and recomputation
/// work through `rec`.
pub fn k_wing_recorded<R: Recorder>(g: &BipartiteGraph, k: u64, rec: &mut R) -> WingResult {
    peel_rounds(g, k, rec, edge_supports)
}

/// The literal matrix formulation (eqs. 25–27), with supports computed by
/// SpGEMM each round.
pub fn k_wing_matrix(g: &BipartiteGraph, k: u64) -> WingResult {
    peel_rounds(g, k, &mut NoopRecorder, edge_supports_algebraic)
}

/// Parallel [`k_wing`]: per-round supports computed with the rayon edge
/// scorer. Identical output.
pub fn k_wing_parallel(g: &BipartiteGraph, k: u64) -> WingResult {
    k_wing_parallel_recorded(g, k, &mut NoopRecorder)
}

/// [`k_wing_parallel`] reporting work counters through `rec`.
pub fn k_wing_parallel_recorded<R: Recorder>(
    g: &BipartiteGraph,
    k: u64,
    rec: &mut R,
) -> WingResult {
    peel_rounds(g, k, rec, crate::edge_support::edge_supports_parallel)
}

/// Eq. 25 evaluated with the Hadamard mask pushed into the SpGEMM
/// ([`crate::edge_support::edge_supports_masked_spgemm`]); a third
/// formulation-level implementation for the agreement tests.
pub fn k_wing_masked_spgemm(g: &BipartiteGraph, k: u64) -> WingResult {
    peel_rounds(
        g,
        k,
        &mut NoopRecorder,
        crate::edge_support::edge_supports_masked_spgemm,
    )
}

/// Edge id of `(u, v)` in row-major order, via binary search in row `u`.
#[inline]
pub(super) fn edge_id(a: &Pattern, u: usize, v: u32) -> usize {
    let row = a.row(u);
    let pos = row.binary_search(&v).expect("edge must exist");
    a.ptr()[u] + pos
}

/// Wing number of every edge (row-major order): the largest `k` for which
/// the edge is contained in the k-wing. Runs the flat bucket-queue engine
/// ([`super::parallel::wing_numbers_with_chunks`]) sequentially: each
/// round removes the whole minimum-support bucket; every butterfly
/// destroyed by the round decrements the supports of its surviving edges.
pub fn wing_numbers(g: &BipartiteGraph) -> Vec<u64> {
    super::parallel::wing_numbers_with_chunks(g, 1, &mut NoopRecorder)
}

/// [`wing_numbers`] reporting rounds, bucket sizes, and repair volumes
/// through `rec`.
pub fn wing_numbers_recorded<R: Recorder>(g: &BipartiteGraph, rec: &mut R) -> Vec<u64> {
    super::parallel::wing_numbers_with_chunks(g, 1, rec)
}

/// The original one-edge-at-a-time formulation: a lazy binary min-heap
/// with exact support repair — removing edge `(u, v)` destroys every
/// butterfly `(u, v, w, x)` with `w ∈ N(v)`, `x ∈ N(u) ∩ N(w)`, `w ≠ u`,
/// `x ≠ v`; each destroyed butterfly decrements the supports of its three
/// surviving edges `(u, x)`, `(w, v)`, `(w, x)`. Independently
/// implemented from the bucket engine — the oracle the differential
/// tests compare against. Test support only.
#[cfg(any(test, feature = "testkit"))]
pub fn wing_numbers_oracle(g: &BipartiteGraph) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let a = g.biadjacency();
    let at = g.biadjacency_t();
    let ne = g.nedges();
    let mut supports = edge_supports(g);
    let mut alive = vec![true; ne];
    let mut wing = vec![0u64; ne];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = (0..ne as u32)
        .map(|e| Reverse((supports[e as usize], e)))
        .collect();
    // Reverse lookup: edge id -> (u, v).
    let endpoints: Vec<(u32, u32)> = g.edges().collect();
    let mut k = 0u64;
    while let Some(Reverse((score, e))) = heap.pop() {
        let ex = e as usize;
        if !alive[ex] || score != supports[ex] {
            continue; // stale entry
        }
        k = k.max(score);
        wing[ex] = k;
        alive[ex] = false;
        let (u, v) = endpoints[ex];
        // Enumerate surviving butterflies through (u, v) and repair.
        for &w in at.row(v as usize) {
            if w == u {
                continue;
            }
            let wv = edge_id(a, w as usize, v);
            if !alive[wv] {
                continue;
            }
            for &x in a.row(u as usize) {
                if x == v {
                    continue;
                }
                let ux = edge_id(a, u as usize, x);
                if !alive[ux] {
                    continue;
                }
                // Does edge (w, x) exist and survive?
                if let Ok(pos) = a.row(w as usize).binary_search(&x) {
                    let wx = a.ptr()[w as usize] + pos;
                    if alive[wx] {
                        for &other in &[ux, wv, wx] {
                            supports[other] -= 1;
                            heap.push(Reverse((supports[other], other as u32)));
                        }
                    }
                }
            }
        }
    }
    wing
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_support::edge_supports as supports_of;
    use bfly_graph::generators::{uniform_exact, with_planted_biclique};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn verify_is_fixed_point(k: u64, res: &WingResult) {
        let s = supports_of(&res.subgraph);
        for &sup in &s {
            assert!(sup >= k, "surviving edge has support {sup} < k = {k}");
        }
    }

    #[test]
    fn complete_graph_thresholds() {
        // K_{3,3}: every edge in 4 butterflies.
        let g = BipartiteGraph::complete(3, 3);
        let r = k_wing(&g, 4);
        assert!(r.keep.iter().all(|&b| b));
        let r = k_wing(&g, 5);
        assert!(r.keep.iter().all(|&b| !b));
        assert_eq!(r.subgraph.nedges(), 0);
    }

    #[test]
    fn matrix_and_expansion_agree() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = with_planted_biclique(
            &uniform_exact(20, 20, 50, &mut rng),
            &[0, 1, 2, 3],
            &[0, 1, 2, 3],
        );
        for k in [1u64, 2, 4, 9, 15] {
            let a = k_wing(&g, k);
            let b = k_wing_matrix(&g, k);
            let c = k_wing_parallel(&g, k);
            let d = k_wing_masked_spgemm(&g, k);
            assert_eq!(a.keep, b.keep, "k = {k} matrix");
            assert_eq!(a.keep, c.keep, "k = {k} parallel");
            assert_eq!(a.keep, d.keep, "k = {k} masked spgemm");
            verify_is_fixed_point(k, &a);
        }
    }

    #[test]
    fn planted_block_survives() {
        // K_{4,4} block: each block edge is in 9 block butterflies.
        let mut rng = StdRng::seed_from_u64(22);
        let base = uniform_exact(30, 30, 40, &mut rng);
        let g = with_planted_biclique(&base, &[5, 6, 7, 8], &[5, 6, 7, 8]);
        let r = k_wing(&g, 9);
        for (idx, (u, v)) in g.edges().enumerate() {
            if (5..=8).contains(&u) && (5..=8).contains(&v) {
                assert!(r.keep[idx], "block edge ({u},{v}) should survive k=9");
            }
        }
        verify_is_fixed_point(9, &r);
    }

    #[test]
    fn nesting_property() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = with_planted_biclique(
            &uniform_exact(25, 25, 70, &mut rng),
            &[0, 1, 2, 3, 4],
            &[0, 1, 2, 3],
        );
        let r1 = k_wing(&g, 2);
        let r5 = k_wing(&g, 5);
        for i in 0..g.nedges() {
            if r5.keep[i] {
                assert!(r1.keep[i], "5-wing edge {i} missing from 2-wing");
            }
        }
    }

    #[test]
    fn bucket_engine_matches_heap_oracle() {
        let mut rng = StdRng::seed_from_u64(25);
        for trial in 0..4 {
            let g = with_planted_biclique(
                &uniform_exact(22, 22, 60, &mut rng),
                &[0, 1, 2, 3],
                &[0, 1, 2],
            );
            let want = wing_numbers_oracle(&g);
            assert_eq!(wing_numbers(&g), want, "trial {trial}");
            assert_eq!(
                super::super::parallel::wing_numbers_parallel(&g),
                want,
                "trial {trial} parallel"
            );
        }
    }

    #[test]
    fn wing_numbers_consistent_with_k_wing() {
        let mut rng = StdRng::seed_from_u64(24);
        let g = with_planted_biclique(&uniform_exact(15, 15, 35, &mut rng), &[0, 1, 2], &[0, 1, 2]);
        let wn = wing_numbers(&g);
        for k in [1u64, 2, 3, 4] {
            let r = k_wing(&g, k);
            for (i, &keep) in r.keep.iter().enumerate() {
                assert_eq!(
                    keep,
                    wn[i] >= k,
                    "edge {i} k={k}: wing number {} vs keep {keep}",
                    wn[i]
                );
            }
        }
    }

    #[test]
    fn butterfly_free_graph_fully_peels() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 0), (1, 1), (2, 2)]).unwrap();
        let r = k_wing(&g, 1);
        assert!(r.keep.iter().all(|&b| !b));
        assert_eq!(wing_numbers(&g), vec![0; 4]);
    }

    #[test]
    fn single_butterfly_is_a_1_wing() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let r = k_wing(&g, 1);
        assert!(r.keep.iter().all(|&b| b));
        assert_eq!(wing_numbers(&g), vec![1, 1, 1, 1]);
    }
}
