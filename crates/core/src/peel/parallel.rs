//! The bucket-peeling engine: one driver for tip and wing decomposition,
//! sequential or frontier-parallel (ParButterfly's peeling strategy on
//! top of the [`super::bucket::BucketQueue`]).
//!
//! Each round extracts the *entire* minimum bucket — every item whose
//! current score equals the minimum — assigns all of them the current
//! peel level, and repairs the scores of the surviving items they shared
//! butterflies with. The repair is expressed as a per-item *kernel* that
//! scatters score decrements into a sparse accumulator; the driver
//! either runs the kernel over the frontier in place (sequential) or
//! splits the frontier into contiguous chunks, gives each worker a
//! private [`PeelScratch`], and merges the per-chunk delta lists into
//! one accumulator after the join — exactly the per-thread-SPA pattern
//! `family/parallel.rs` uses for counting, and the reason the result is
//! deterministic: the applied delta for each survivor is an integer sum
//! that does not depend on chunk boundaries or thread count.
//!
//! Scores are *clamped from below* at the current level when applied
//! (`new = max(level, old − delta)`). Peel numbers are the running
//! maximum of extraction scores, so an item whose true score drops below
//! the current level is peeled at that level either way; the clamp keeps
//! the bucket cursor monotone within a window without changing any peel
//! number.
//!
//! Why simultaneous removal matches one-at-a-time peeling:
//!
//! * **tip** — the pairwise count `C(|N(u) ∩ N(w)|, 2)` between two
//!   same-side vertices goes through the *other* side, which tip peeling
//!   never removes, so it is constant all run; removing a frontier set
//!   decreases each survivor by the plain sum over frontier members.
//! * **wing** — removing an edge set destroys each butterfly containing
//!   at least one of them exactly once; the kernel charges a butterfly
//!   to its minimum-id frontier edge, which decrements only the
//!   butterfly's non-frontier edges.

use super::bucket::{BucketQueue, StampSet};
use super::wing::edge_id;
use crate::edge_support::{edge_supports, edge_supports_parallel};
use crate::vertex_counts::{butterflies_per_vertex, butterflies_per_vertex_parallel};
use bfly_graph::{BipartiteGraph, Side};
use bfly_sparse::{choose2, Spa};
use bfly_telemetry::{Counter, MetricsHub, NoopRecorder, Recorder, ThreadTrace};
use rayon::prelude::*;

/// Smallest frontier worth chunking across workers: below this the
/// per-round join (and the thread handoff of the vendored rayon shim)
/// costs more than the kernel work it distributes, so the round runs
/// inline on the caller's scratch.
pub const PAR_FRONTIER_MIN: usize = 128;

/// Per-worker peeling scratch: `cnt` accumulates wedge multiplicities
/// inside a single kernel invocation (tip only), `delta` accumulates the
/// chunk's score decrements across the whole round.
pub(super) struct PeelScratch {
    pub(super) cnt: Spa<u64>,
    pub(super) delta: Spa<u64>,
}

impl PeelScratch {
    fn new(n: usize) -> Self {
        PeelScratch {
            cnt: Spa::new(n),
            delta: Spa::new(n),
        }
    }
}

/// The shared driver. `scores` are the initial butterfly counts or edge
/// supports; `kernel(item, alive, frontier, scratch)` scatters the score
/// decrements caused by removing `item` into `scratch.delta`. Returns
/// the peel number of every item.
///
/// Recorded per round: a `peel_round` span, [`Counter::PeelRounds`], the
/// peeled-item counter given by `peeled`, the `bucket_size` and
/// `support_updates` histograms, and [`Counter::SupportsRecomputed`]
/// (touched delta entries). Parallel rounds additionally merge one
/// `chunk` span per worker and bump [`Counter::ParChunks`].
///
/// An optional wall-clock deadline is polled at
/// round boundaries (the engine's phase boundary — never inside a
/// kernel). Returns `(peel, complete)`. When the deadline cuts the run
/// short, already-peeled items carry their exact peel numbers and every
/// still-alive item is assigned `max(level, residual score)` — an upper
/// bound on its true peel number, since residual scores only decrease
/// and the level only rises to an extracted score.
fn peel_with_kernel_deadline<R, K>(
    mut scores: Vec<u64>,
    chunks: usize,
    peeled: Counter,
    deadline: Option<std::time::Instant>,
    rec: &mut R,
    kernel: K,
) -> (Vec<u64>, bool)
where
    R: Recorder,
    K: Fn(u32, &[bool], &StampSet, &mut PeelScratch) + Sync,
{
    let n = scores.len();
    let mut alive = vec![true; n];
    let mut peel = vec![0u64; n];
    let mut queue = BucketQueue::new();
    for (i, &s) in scores.iter().enumerate() {
        queue.push(i as u32, s);
    }
    let mut frontier_set = StampSet::new(n);
    let mut main = PeelScratch::new(n);
    // Worker scratches persist across rounds; allocated on first use.
    let mut pool: Vec<PeelScratch> = Vec::new();
    let mut level = 0u64;
    let mut complete = true;
    while let Some((score, frontier)) = queue.pop_min_bucket(&scores, &mut alive) {
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            // The popped frontier was already marked dead; peel it at its
            // score like a normal round, then stop at this boundary.
            level = level.max(score);
            for &v in &frontier {
                peel[v as usize] = level;
            }
            complete = false;
            break;
        }
        level = level.max(score);
        if R::ENABLED {
            rec.span_enter("peel_round");
            rec.incr(Counter::PeelRounds, 1);
            rec.incr(peeled, frontier.len() as u64);
            rec.hist_record("bucket_size", frontier.len() as u64);
        }
        for &v in &frontier {
            peel[v as usize] = level;
        }
        // Score-0 items sit in no surviving butterfly (their stored score
        // upper-bounds the true one), so their removal repairs nothing.
        if score > 0 {
            frontier_set.clear();
            for &v in &frontier {
                frontier_set.insert(v);
            }
            if chunks > 1 && frontier.len() >= PAR_FRONTIER_MIN {
                while pool.len() < chunks {
                    pool.push(PeelScratch::new(n));
                }
                let chunk_len = frontier.len().div_ceil(chunks);
                let mut parts: Vec<(&[u32], PeelScratch)> = Vec::with_capacity(chunks);
                for part in frontier.chunks(chunk_len) {
                    parts.push((part, pool.pop().expect("pool sized to chunks")));
                }
                let (alive_ref, set_ref, kernel_ref) = (&alive, &frontier_set, &kernel);
                type ChunkOut = ((Vec<u32>, Vec<u64>), Option<ThreadTrace>, PeelScratch);
                let results: Vec<ChunkOut> = parts
                    .into_par_iter()
                    .map(|(part, mut scratch)| {
                        let mut trace = R::ENABLED.then(ThreadTrace::new);
                        let t0 = std::time::Instant::now();
                        if let Some(t) = trace.as_mut() {
                            t.span_enter("chunk");
                        }
                        for &v in part {
                            kernel_ref(v, alive_ref, set_ref, &mut scratch);
                        }
                        if let Some(t) = trace.as_mut() {
                            t.span_exit("chunk");
                            t.hist_record("chunk_us", t0.elapsed().as_micros() as u64);
                        }
                        (scratch.delta.drain_sorted(), trace, scratch)
                    })
                    .collect();
                if R::ENABLED {
                    rec.incr(Counter::ParChunks, results.len() as u64);
                }
                // Merge every chunk's deltas before applying any of them:
                // a survivor's total decrement must be summed first, as
                // clamped partial applications would not commute.
                for (i, ((idx, vals), trace, scratch)) in results.into_iter().enumerate() {
                    for (&w, &d) in idx.iter().zip(vals.iter()) {
                        main.delta.scatter(w, d);
                    }
                    pool.push(scratch);
                    if let Some(t) = trace {
                        // Track 0 is the caller's stream; workers from 1.
                        rec.merge_thread(i as u32 + 1, t);
                    }
                }
            } else {
                for &v in &frontier {
                    kernel(v, &alive, &frontier_set, &mut main);
                }
            }
            let (idx, vals) = main.delta.drain_sorted();
            if R::ENABLED {
                rec.incr(Counter::SupportsRecomputed, idx.len() as u64);
                rec.hist_record("support_updates", idx.len() as u64);
            }
            for (&w, &d) in idx.iter().zip(vals.iter()) {
                let wx = w as usize;
                let old = scores[wx];
                let new = level.max(old.saturating_sub(d));
                if new != old {
                    scores[wx] = new;
                    queue.push(w, new);
                }
            }
        } else if R::ENABLED {
            rec.hist_record("support_updates", 0);
        }
        if R::ENABLED {
            rec.span_exit("peel_round");
        }
    }
    if !complete {
        for i in 0..n {
            if alive[i] {
                peel[i] = level.max(scores[i]);
            }
        }
    }
    (peel, complete)
}

/// [`super::tip::tip_numbers`] through the bucket engine with an explicit
/// chunk count (`1` = sequential; tests and benches pin exact fan-outs
/// with this). Output is identical for every chunk count.
pub fn tip_numbers_with_chunks<R: Recorder>(
    g: &BipartiteGraph,
    side: Side,
    chunks: usize,
    rec: &mut R,
) -> Vec<u64> {
    let init = if chunks > 1 {
        butterflies_per_vertex_parallel(g, side)
    } else {
        butterflies_per_vertex(g, side)
    };
    tip_peel_run(g, side, chunks, init, None, rec).0
}

/// [`tip_numbers_with_chunks`] recording live into a shared
/// [`MetricsHub`]: round counters, `peel_round` span aggregates, and the
/// per-round histograms land in the hub as the peel progresses, so a
/// concurrent scrape or stream sees the decomposition advance
/// round-by-round instead of all at once after the merge.
pub fn tip_numbers_shared(
    g: &BipartiteGraph,
    side: Side,
    chunks: usize,
    hub: &MetricsHub,
) -> Vec<u64> {
    let mut rec: &MetricsHub = hub;
    tip_numbers_with_chunks(g, side, chunks, &mut rec)
}

/// Shared tip-peeling run: bucket engine over precomputed initial counts
/// with an optional round-boundary deadline.
fn tip_peel_run<R: Recorder>(
    g: &BipartiteGraph,
    side: Side,
    chunks: usize,
    init: Vec<u64>,
    deadline: Option<std::time::Instant>,
    rec: &mut R,
) -> (Vec<u64>, bool) {
    let (part_adj, other_adj) = match side {
        Side::V1 => (g.biadjacency(), g.biadjacency_t()),
        Side::V2 => (g.biadjacency_t(), g.biadjacency()),
    };
    let kernel = |u: u32, alive: &[bool], _frontier: &StampSet, scratch: &mut PeelScratch| {
        // Wedge-expand from the removed vertex over surviving partners;
        // C(multiplicity, 2) butterflies vanish per surviving partner.
        for &j in part_adj.row(u as usize) {
            for &w in other_adj.row(j as usize) {
                if alive[w as usize] {
                    scratch.cnt.scatter(w, 1);
                }
            }
        }
        let PeelScratch { cnt, delta } = scratch;
        for (w, c) in cnt.entries() {
            let shared = choose2(c);
            if shared > 0 {
                delta.scatter(w, shared);
            }
        }
        cnt.clear();
    };
    peel_with_kernel_deadline(init, chunks, Counter::PeeledVertices, deadline, rec, kernel)
}

/// [`super::wing::wing_numbers`] through the bucket engine with an
/// explicit chunk count. Output is identical for every chunk count.
pub fn wing_numbers_with_chunks<R: Recorder>(
    g: &BipartiteGraph,
    chunks: usize,
    rec: &mut R,
) -> Vec<u64> {
    let init = if chunks > 1 {
        edge_supports_parallel(g)
    } else {
        edge_supports(g)
    };
    wing_peel_run(g, chunks, init, None, rec).0
}

/// [`wing_numbers_with_chunks`] recording live into a shared
/// [`MetricsHub`]; same liveness contract as [`tip_numbers_shared`].
pub fn wing_numbers_shared(g: &BipartiteGraph, chunks: usize, hub: &MetricsHub) -> Vec<u64> {
    let mut rec: &MetricsHub = hub;
    wing_numbers_with_chunks(g, chunks, &mut rec)
}

/// Shared wing-peeling run: bucket engine over precomputed initial
/// supports with an optional round-boundary deadline.
fn wing_peel_run<R: Recorder>(
    g: &BipartiteGraph,
    chunks: usize,
    init: Vec<u64>,
    deadline: Option<std::time::Instant>,
    rec: &mut R,
) -> (Vec<u64>, bool) {
    let a = g.biadjacency();
    let at = g.biadjacency_t();
    let endpoints: Vec<(u32, u32)> = g.edges().collect();
    let kernel = move |e: u32, alive: &[bool], frontier: &StampSet, scratch: &mut PeelScratch| {
        let ex = e as usize;
        let (u, v) = endpoints[ex];
        // An edge participates in this round's butterflies if it was
        // alive at round start — still alive now, or in the frontier.
        let present = |i: usize| alive[i] || frontier.contains(i as u32);
        for &w in at.row(v as usize) {
            if w == u {
                continue;
            }
            let wv = edge_id(a, w as usize, v);
            if !present(wv) {
                continue;
            }
            for &x in a.row(u as usize) {
                if x == v {
                    continue;
                }
                let ux = edge_id(a, u as usize, x);
                if !present(ux) {
                    continue;
                }
                let Ok(pos) = a.row(w as usize).binary_search(&x) else {
                    continue;
                };
                let wx = a.ptr()[w as usize] + pos;
                if !present(wx) {
                    continue;
                }
                // The butterfly {e, ux, wv, wx} dies this round. Charge
                // it to its minimum-id frontier edge so it is processed
                // exactly once, decrementing only surviving edges.
                if [ux, wv, wx]
                    .iter()
                    .any(|&o| o < ex && frontier.contains(o as u32))
                {
                    continue;
                }
                for &o in &[ux, wv, wx] {
                    if alive[o] {
                        scratch.delta.scatter(o as u32, 1);
                    }
                }
            }
        }
    };
    peel_with_kernel_deadline(init, chunks, Counter::PeeledEdges, deadline, rec, kernel)
}

/// Tip decomposition with the frontier parallelised over rayon's current
/// pool (one chunk per worker). Bitwise-identical to
/// [`super::tip::tip_numbers`] at any thread count.
pub fn tip_numbers_parallel(g: &BipartiteGraph, side: Side) -> Vec<u64> {
    tip_numbers_parallel_recorded(g, side, &mut NoopRecorder)
}

/// [`tip_numbers_parallel`] reporting rounds, bucket sizes, and repair
/// volumes through `rec`.
pub fn tip_numbers_parallel_recorded<R: Recorder>(
    g: &BipartiteGraph,
    side: Side,
    rec: &mut R,
) -> Vec<u64> {
    let chunks = rayon::current_num_threads().max(1);
    tip_numbers_with_chunks(g, side, chunks, rec)
}

/// Wing decomposition with the frontier parallelised over rayon's
/// current pool. Bitwise-identical to [`super::wing::wing_numbers`] at
/// any thread count.
pub fn wing_numbers_parallel(g: &BipartiteGraph) -> Vec<u64> {
    wing_numbers_parallel_recorded(g, &mut NoopRecorder)
}

/// [`wing_numbers_parallel`] reporting rounds, bucket sizes, and repair
/// volumes through `rec`.
pub fn wing_numbers_parallel_recorded<R: Recorder>(g: &BipartiteGraph, rec: &mut R) -> Vec<u64> {
    let chunks = rayon::current_num_threads().max(1);
    wing_numbers_with_chunks(g, chunks, rec)
}

/// Estimated bytes for one [`PeelScratch`] over `n` items: two `Spa`s,
/// each roughly value (8) + stamp (8) + touched-list (8) bytes per slot.
fn scratch_bytes(n: usize) -> u64 {
    n as u64 * 48
}

/// Estimated fixed engine footprint over `n` items: scores, peel
/// numbers, alive flags, bucket queue entries.
fn engine_base_bytes(n: usize) -> u64 {
    n as u64 * 32
}

/// Pick the widest chunk fan-out the byte budget allows, degrading
/// parallel → sequential before giving up: each extra chunk costs one
/// [`PeelScratch`]. Returns `Err` only when even the sequential shape
/// (base + one scratch) does not fit.
fn budgeted_chunks<R: Recorder>(
    n: usize,
    want_chunks: usize,
    budget: &crate::budget::ResourceBudget,
    rec: &mut R,
) -> crate::error::Result<usize> {
    let floor = engine_base_bytes(n) + scratch_bytes(n);
    budget.check_bytes(floor)?;
    let mut chunks = want_chunks.max(1);
    // Parallel rounds add one scratch per chunk on top of the main one.
    while chunks > 1 && !budget.bytes_fit(floor + chunks as u64 * scratch_bytes(n)) {
        chunks -= 1;
    }
    if chunks < want_chunks.max(1) {
        crate::budget::record_degraded(rec, "bytes");
        rec.gauge("budget.peel_chunks", chunks as f64);
    }
    Ok(chunks)
}

/// Fallible [`super::tip::tip_numbers`]: validates the graph and runs
/// the overflow-checked initial counts before peeling. Never panics on
/// structurally invalid input.
pub fn try_tip_numbers(g: &BipartiteGraph, side: Side) -> crate::error::Result<Vec<u64>> {
    let out = tip_numbers_budgeted_recorded(
        g,
        side,
        &crate::budget::ResourceBudget::unlimited(),
        &mut NoopRecorder,
    )?;
    Ok(out.value)
}

/// Fallible [`super::wing::wing_numbers`]: validates the graph and runs
/// the overflow-checked initial supports before peeling.
pub fn try_wing_numbers(g: &BipartiteGraph) -> crate::error::Result<Vec<u64>> {
    let out = wing_numbers_budgeted_recorded(
        g,
        &crate::budget::ResourceBudget::unlimited(),
        &mut NoopRecorder,
    )?;
    Ok(out.value)
}

/// Budget-aware tip decomposition. Degradation order: a byte budget too
/// small for the planned fan-out shrinks the chunk count toward
/// sequential (`budget.degraded` gauge = bytes); a wedge-work cap the
/// *initial counting* pass would exceed fails with
/// [`BudgetExceeded`](crate::error::BflyError::BudgetExceeded); an
/// expired deadline stops peeling at a round boundary and returns
/// [`Partial::truncated`] — peeled items exact, still-alive items
/// upper-bounded by their residual score.
pub fn tip_numbers_budgeted_recorded<R: Recorder>(
    g: &BipartiteGraph,
    side: Side,
    budget: &crate::budget::ResourceBudget,
    rec: &mut R,
) -> crate::error::Result<crate::budget::Partial<Vec<u64>>> {
    crate::error::validate_graph(g)?;
    budget.record_limits(rec);
    let n = match side {
        Side::V1 => g.nv1(),
        Side::V2 => g.nv2(),
    };
    budget.check_wedge_work(tip_init_work(g, side))?;
    let want = rayon::current_num_threads().max(1);
    let chunks = budgeted_chunks(n, want, budget, rec)?;
    let init = crate::vertex_counts::try_butterflies_per_vertex(g, side)?;
    let (peel, complete) = tip_peel_run(g, side, chunks, init, budget.deadline, rec);
    if !complete {
        crate::budget::record_degraded(rec, "deadline");
    }
    Ok(if complete {
        crate::budget::Partial::complete(peel)
    } else {
        crate::budget::Partial::truncated(peel)
    })
}

/// Budget-aware wing decomposition; same degradation order as
/// [`tip_numbers_budgeted_recorded`], over edges instead of vertices.
pub fn wing_numbers_budgeted_recorded<R: Recorder>(
    g: &BipartiteGraph,
    budget: &crate::budget::ResourceBudget,
    rec: &mut R,
) -> crate::error::Result<crate::budget::Partial<Vec<u64>>> {
    crate::error::validate_graph(g)?;
    budget.record_limits(rec);
    budget.check_wedge_work(wing_init_work(g))?;
    let want = rayon::current_num_threads().max(1);
    let chunks = budgeted_chunks(g.nedges(), want, budget, rec)?;
    let init = crate::edge_support::try_edge_supports(g)?;
    let (peel, complete) = wing_peel_run(g, chunks, init, budget.deadline, rec);
    if !complete {
        crate::budget::record_degraded(rec, "deadline");
    }
    Ok(if complete {
        crate::budget::Partial::complete(peel)
    } else {
        crate::budget::Partial::truncated(peel)
    })
}

/// Wedge work of the tip initial-count pass: `Σ_j deg(j)²` over the
/// never-peeled side (each vertex expands through its neighbours'
/// adjacency). Saturates at `u64::MAX` — a total that large exceeds any
/// realistic cap anyway.
fn tip_init_work(g: &BipartiteGraph, side: Side) -> u64 {
    let other = match side {
        Side::V1 => g.biadjacency_t(),
        Side::V2 => g.biadjacency(),
    };
    let mut total = 0u128;
    for j in 0..other.nrows() {
        let d = other.row_nnz(j) as u128;
        total += d * d;
    }
    u64::try_from(total).unwrap_or(u64::MAX)
}

/// Wedge work of the wing initial-support pass:
/// `Σ_{(u,v)} deg(u)·deg(v)` — the per-edge expansion volume of eq. 23.
fn wing_init_work(g: &BipartiteGraph) -> u64 {
    let mut total = 0u128;
    for (u, v) in g.edges() {
        total += g.deg_v1(u as usize) as u128 * g.deg_v2(v as usize) as u128;
    }
    u64::try_from(total).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfly_graph::generators::{uniform_exact, with_planted_biclique};
    use bfly_telemetry::InMemoryRecorder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        with_planted_biclique(
            &uniform_exact(30, 30, 110, &mut rng),
            &[0, 1, 2, 3, 4],
            &[0, 1, 2, 3],
        )
    }

    #[test]
    fn chunk_count_never_changes_tip_numbers() {
        for seed in [1u64, 2, 3] {
            let g = sample(seed);
            for side in [Side::V1, Side::V2] {
                let want = tip_numbers_with_chunks(&g, side, 1, &mut NoopRecorder);
                for chunks in [2usize, 4, 6] {
                    assert_eq!(
                        tip_numbers_with_chunks(&g, side, chunks, &mut NoopRecorder),
                        want,
                        "seed {seed} side {side:?} chunks {chunks}"
                    );
                }
            }
        }
    }

    #[test]
    fn chunk_count_never_changes_wing_numbers() {
        for seed in [4u64, 5, 6] {
            let g = sample(seed);
            let want = wing_numbers_with_chunks(&g, 1, &mut NoopRecorder);
            for chunks in [2usize, 4, 6] {
                assert_eq!(
                    wing_numbers_with_chunks(&g, chunks, &mut NoopRecorder),
                    want,
                    "seed {seed} chunks {chunks}"
                );
            }
        }
    }

    #[test]
    fn engine_records_rounds_buckets_and_repairs() {
        let g = sample(7);
        let mut rec = InMemoryRecorder::new();
        let tn = tip_numbers_with_chunks(&g, Side::V1, 1, &mut rec);
        let rounds = rec.counter(Counter::PeelRounds);
        assert!(rounds >= 1);
        assert_eq!(rec.counter(Counter::PeeledVertices), tn.len() as u64);
        let buckets = rec.histogram("bucket_size").expect("bucket_size recorded");
        assert_eq!(buckets.count(), rounds);
        assert_eq!(
            buckets.sum(),
            tn.len() as u64,
            "bucket sizes sum to the peeled item count"
        );
        assert!(rec.counter(Counter::SupportsRecomputed) > 0);
        assert!(rec.spans().iter().any(|s| s.name == "peel_round"));
    }

    #[test]
    fn parallel_rounds_merge_worker_traces() {
        // A biclique-dominated graph puts hundreds of edges in one
        // bucket, forcing the chunked path at small PAR_FRONTIER_MIN
        // multiples.
        let g = BipartiteGraph::complete(16, 16);
        let mut rec = InMemoryRecorder::new();
        let wn = wing_numbers_with_chunks(&g, 4, &mut rec);
        assert!(wn.iter().all(|&w| w == wn[0]), "biclique peels uniformly");
        assert!(rec.counter(Counter::ParChunks) >= 2);
        assert!(rec
            .spans()
            .iter()
            .any(|s| s.name == "chunk" && s.thread > 0));
    }

    #[test]
    fn empty_and_degenerate_graphs() {
        for g in [
            BipartiteGraph::empty(5, 5),
            BipartiteGraph::complete(1, 8),
            BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap(),
        ] {
            for side in [Side::V1, Side::V2] {
                let tn = tip_numbers_with_chunks(&g, side, 4, &mut NoopRecorder);
                assert!(tn.iter().all(|&t| t == 0));
            }
            let wn = wing_numbers_with_chunks(&g, 4, &mut NoopRecorder);
            assert!(wn.iter().all(|&w| w == 0));
        }
    }
}
