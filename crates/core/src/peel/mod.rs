//! Butterfly peeling: k-tip and k-wing subgraph extraction and the full
//! tip/wing decompositions (paper §IV, after Sariyüce–Pinar [11]).
//!
//! The decompositions run on the shared bucket-peeling engine in
//! [`parallel`]: a flat [`bucket::BucketQueue`] (O(1) push, lazy
//! re-insertion on score decrease) drained a whole minimum bucket per
//! round, with the score repair either inline or chunked over the peeled
//! frontier across rayon workers. See `docs/PEELING.md`.

pub mod bucket;
pub mod decomposition;
pub mod parallel;
pub mod tip;
pub mod wing;

pub use bucket::{BucketQueue, StampSet};
pub use decomposition::{TipDecomposition, WingDecomposition};
pub use parallel::{
    tip_numbers_budgeted_recorded, tip_numbers_parallel, tip_numbers_parallel_recorded,
    tip_numbers_shared, tip_numbers_with_chunks, try_tip_numbers, try_wing_numbers,
    wing_numbers_budgeted_recorded, wing_numbers_parallel, wing_numbers_parallel_recorded,
    wing_numbers_shared, wing_numbers_with_chunks, PAR_FRONTIER_MIN,
};

pub use tip::{
    k_tip, k_tip_lookahead, k_tip_matrix, k_tip_parallel, k_tip_parallel_recorded, k_tip_recorded,
    tip_numbers, tip_numbers_bucket, tip_numbers_recorded, TipResult,
};
pub use wing::{
    k_wing, k_wing_masked_spgemm, k_wing_matrix, k_wing_parallel, k_wing_parallel_recorded,
    k_wing_recorded, wing_numbers, wing_numbers_recorded, WingResult,
};

#[cfg(any(test, feature = "testkit"))]
pub use tip::tip_numbers_oracle;
#[cfg(any(test, feature = "testkit"))]
pub use wing::wing_numbers_oracle;
