//! Butterfly peeling: k-tip and k-wing subgraph extraction and the full
//! tip/wing decompositions (paper §IV, after Sariyüce–Pinar [11]).

pub mod decomposition;
pub mod tip;
pub mod wing;

pub use decomposition::{TipDecomposition, WingDecomposition};

pub use tip::{
    k_tip, k_tip_lookahead, k_tip_matrix, k_tip_parallel, k_tip_parallel_recorded, k_tip_recorded,
    tip_numbers, tip_numbers_bucket, TipResult,
};
pub use wing::{
    k_wing, k_wing_masked_spgemm, k_wing_matrix, k_wing_parallel, k_wing_parallel_recorded,
    k_wing_recorded, wing_numbers, WingResult,
};
