//! Precomputed peeling hierarchies with O(1)-per-query access.
//!
//! `k_tip`/`k_wing` answer one threshold per call; the decompositions
//! ([`tip_numbers`]/[`wing_numbers`]) contain *every* threshold at once.
//! These wrappers package the numbers with the query API a user actually
//! wants: membership at any `k`, the subgraph at any level, the hierarchy
//! of distinct levels, and summary statistics.

use super::parallel::{tip_numbers_parallel, wing_numbers_parallel};
use super::tip::tip_numbers;
use super::wing::wing_numbers;
use bfly_graph::{BipartiteGraph, Side};

/// Survivors at each threshold from one sort of the level vector: with
/// the levels ascending, the count at `k` is everything at or past the
/// first element `≥ k` — `O((n + q) log n)` total instead of one `O(n)`
/// scan per query.
fn survivors_by_sorted_levels(numbers: &[u64], ks: &[u64]) -> Vec<usize> {
    let mut sorted = numbers.to_vec();
    sorted.sort_unstable();
    ks.iter()
        .map(|&k| sorted.len() - sorted.partition_point(|&t| t < k))
        .collect()
}

/// The full tip hierarchy of one side.
#[derive(Debug, Clone)]
pub struct TipDecomposition {
    graph: BipartiteGraph,
    side: Side,
    numbers: Vec<u64>,
}

impl TipDecomposition {
    /// Peel once, keep everything.
    pub fn compute(g: &BipartiteGraph, side: Side) -> Self {
        Self {
            graph: g.clone(),
            side,
            numbers: tip_numbers(g, side),
        }
    }

    /// [`TipDecomposition::compute`] with the peel frontier chunked over
    /// rayon's current pool; identical numbers at any thread count.
    pub fn compute_parallel(g: &BipartiteGraph, side: Side) -> Self {
        Self {
            graph: g.clone(),
            side,
            numbers: tip_numbers_parallel(g, side),
        }
    }

    /// Fallible [`TipDecomposition::compute`]: validates the graph and
    /// uses overflow-checked initial counts, so hostile input fails with
    /// a typed error instead of panicking.
    pub fn try_compute(g: &BipartiteGraph, side: Side) -> crate::error::Result<Self> {
        Ok(Self {
            graph: g.clone(),
            side,
            numbers: super::parallel::try_tip_numbers(g, side)?,
        })
    }

    /// Tip number of a vertex.
    pub fn tip_number(&self, v: u32) -> u64 {
        self.numbers[v as usize]
    }

    /// All tip numbers (indexed by vertex).
    pub fn numbers(&self) -> &[u64] {
        &self.numbers
    }

    /// Which side was decomposed.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Membership mask of the k-tip (equals `k_tip(g, side, k).keep`).
    pub fn members_at(&self, k: u64) -> Vec<bool> {
        self.numbers.iter().map(|&t| t >= k).collect()
    }

    /// The k-tip subgraph (dimension-preserving mask).
    pub fn subgraph_at(&self, k: u64) -> BipartiteGraph {
        let keep = self.members_at(k);
        match self.side {
            Side::V1 => self.graph.masked(&keep, &vec![true; self.graph.nv2()]),
            Side::V2 => self.graph.masked(&vec![true; self.graph.nv1()], &keep),
        }
    }

    /// Distinct nonzero hierarchy levels, ascending.
    pub fn levels(&self) -> Vec<u64> {
        let mut ls: Vec<u64> = self.numbers.iter().copied().filter(|&t| t > 0).collect();
        ls.sort_unstable();
        ls.dedup();
        ls
    }

    /// Largest k with a non-empty k-tip.
    pub fn max_level(&self) -> u64 {
        self.numbers.iter().copied().max().unwrap_or(0)
    }

    /// Number of vertices surviving at each requested level.
    pub fn survivor_counts(&self, ks: &[u64]) -> Vec<usize> {
        survivors_by_sorted_levels(&self.numbers, ks)
    }
}

/// The full wing hierarchy (edge-level).
#[derive(Debug, Clone)]
pub struct WingDecomposition {
    graph: BipartiteGraph,
    numbers: Vec<u64>,
}

impl WingDecomposition {
    /// Peel once, keep everything.
    pub fn compute(g: &BipartiteGraph) -> Self {
        Self {
            graph: g.clone(),
            numbers: wing_numbers(g),
        }
    }

    /// [`WingDecomposition::compute`] with the peel frontier chunked over
    /// rayon's current pool; identical numbers at any thread count.
    pub fn compute_parallel(g: &BipartiteGraph) -> Self {
        Self {
            graph: g.clone(),
            numbers: wing_numbers_parallel(g),
        }
    }

    /// Fallible [`WingDecomposition::compute`]: validates the graph and
    /// uses overflow-checked initial supports.
    pub fn try_compute(g: &BipartiteGraph) -> crate::error::Result<Self> {
        Ok(Self {
            graph: g.clone(),
            numbers: super::parallel::try_wing_numbers(g)?,
        })
    }

    /// Wing number of an edge (row-major edge index).
    pub fn wing_number(&self, edge: usize) -> u64 {
        self.numbers[edge]
    }

    /// All wing numbers (row-major edge order).
    pub fn numbers(&self) -> &[u64] {
        &self.numbers
    }

    /// Membership mask of the k-wing (equals `k_wing(g, k).keep`).
    pub fn members_at(&self, k: u64) -> Vec<bool> {
        self.numbers.iter().map(|&w| w >= k).collect()
    }

    /// The k-wing subgraph.
    pub fn subgraph_at(&self, k: u64) -> BipartiteGraph {
        let remove: Vec<bool> = self.numbers.iter().map(|&w| w < k).collect();
        self.graph.without_edges(&remove)
    }

    /// Largest k with a non-empty k-wing.
    pub fn max_level(&self) -> u64 {
        self.numbers.iter().copied().max().unwrap_or(0)
    }

    /// Number of edges surviving at each requested level.
    pub fn survivor_counts(&self, ks: &[u64]) -> Vec<usize> {
        survivors_by_sorted_levels(&self.numbers, ks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::{k_tip, k_wing};
    use bfly_graph::generators::{uniform_exact, with_planted_biclique};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(303);
        with_planted_biclique(
            &uniform_exact(20, 20, 55, &mut rng),
            &[0, 1, 2, 3],
            &[0, 1, 2],
        )
    }

    #[test]
    fn tip_queries_match_direct_peeling() {
        let g = sample();
        let d = TipDecomposition::compute(&g, Side::V1);
        for k in [1u64, 2, 3, d.max_level()] {
            if k == 0 {
                continue;
            }
            let direct = k_tip(&g, Side::V1, k);
            assert_eq!(d.members_at(k), direct.keep, "k = {k}");
            assert_eq!(d.subgraph_at(k), direct.subgraph, "k = {k}");
        }
    }

    #[test]
    fn wing_queries_match_direct_peeling() {
        let g = sample();
        let d = WingDecomposition::compute(&g);
        for k in [1u64, 2, d.max_level()] {
            if k == 0 {
                continue;
            }
            let direct = k_wing(&g, k);
            assert_eq!(d.members_at(k), direct.keep, "k = {k}");
            assert_eq!(
                d.subgraph_at(k).nedges(),
                direct.subgraph.nedges(),
                "k = {k}"
            );
        }
    }

    #[test]
    fn levels_and_survivor_counts_are_monotone() {
        let g = sample();
        let d = TipDecomposition::compute(&g, Side::V1);
        let levels = d.levels();
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
        let counts = d.survivor_counts(&levels);
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
        let w = WingDecomposition::compute(&g);
        let ks = [1u64, 2, 4, 8];
        let wc = w.survivor_counts(&ks);
        assert!(wc.windows(2).all(|x| x[0] >= x[1]));
    }

    #[test]
    fn survivor_counts_match_naive_scan() {
        let g = sample();
        let d = TipDecomposition::compute(&g, Side::V1);
        let w = WingDecomposition::compute(&g);
        // Thresholds below, at, between, and past the observed levels.
        let mut ks = vec![0u64, 1, d.max_level(), d.max_level() + 5, u64::MAX];
        ks.extend(d.levels());
        let naive = |numbers: &[u64]| -> Vec<usize> {
            ks.iter()
                .map(|&k| numbers.iter().filter(|&&t| t >= k).count())
                .collect()
        };
        assert_eq!(d.survivor_counts(&ks), naive(d.numbers()));
        assert_eq!(w.survivor_counts(&ks), naive(w.numbers()));
    }

    #[test]
    fn parallel_compute_matches_sequential() {
        let g = sample();
        for side in [Side::V1, Side::V2] {
            assert_eq!(
                TipDecomposition::compute_parallel(&g, side).numbers(),
                TipDecomposition::compute(&g, side).numbers()
            );
        }
        assert_eq!(
            WingDecomposition::compute_parallel(&g).numbers(),
            WingDecomposition::compute(&g).numbers()
        );
    }

    #[test]
    fn per_element_accessors() {
        let g = BipartiteGraph::complete(3, 3);
        let d = TipDecomposition::compute(&g, Side::V1);
        assert_eq!(d.tip_number(0), 6);
        assert_eq!(d.side(), Side::V1);
        assert_eq!(d.numbers(), &[6, 6, 6]);
        let w = WingDecomposition::compute(&g);
        assert_eq!(w.wing_number(0), 4);
        assert_eq!(w.max_level(), 4);
    }
}
