//! k-tip extraction and tip decomposition (paper §IV-B).
//!
//! A maximal induced subgraph `H` is a *k-tip* (w.r.t. one side of the
//! bipartition) if every vertex of that side participates in at least `k`
//! butterflies within `H`. The paper's procedure (eqs. 19–22): compute the
//! per-vertex butterfly vector `s`, mask out vertices with `s < k`, and
//! iterate to a fixed point.
//!
//! Three implementations:
//! * [`k_tip`] — wedge-expansion scores each round (production).
//! * [`k_tip_matrix`] — the literal eqs. 19–22 loop over sparse matrices,
//!   recomputing `B = A_i·A_iᵀ` per round (fidelity reference).
//! * [`k_tip_lookahead`] — the Fig. 8 fused variant: scores and mask are
//!   produced in one triangular sweep per round, finalising each vertex's
//!   score (and mask bit) as soon as its row has been passed.
//!
//! [`tip_numbers`] computes the full decomposition: for each vertex the
//! largest `k` such that it survives in the k-tip — whole-bucket peeling
//! with incremental score repair through the engine in
//! [`super::parallel`] (sequential by default;
//! [`super::parallel::tip_numbers_parallel`] chunks each frontier over
//! rayon workers). The original lazy-min-heap formulation survives as
//! [`tip_numbers_oracle`], a `testkit`-gated witness for the
//! differential tests.

use crate::vertex_counts::{butterflies_per_vertex, butterflies_per_vertex_algebraic};
use bfly_graph::{BipartiteGraph, Side};
use bfly_sparse::{choose2, Spa};
use bfly_telemetry::{Counter, NoopRecorder, Recorder};

/// Result of a k-tip extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TipResult {
    /// Which vertices of the peeled side survive.
    pub keep: Vec<bool>,
    /// Number of peeling rounds until the fixed point.
    pub rounds: usize,
    /// The k-tip subgraph (masked, original dimensions preserved).
    pub subgraph: BipartiteGraph,
}

fn finish(g: &BipartiteGraph, side: Side, keep: Vec<bool>, rounds: usize) -> TipResult {
    let subgraph = match side {
        Side::V1 => g.masked(&keep, &vec![true; g.nv2()]),
        Side::V2 => g.masked(&vec![true; g.nv1()], &keep),
    };
    TipResult {
        keep,
        rounds,
        subgraph,
    }
}

/// The one fixed-point loop shared by every k-tip variant: each round
/// `mask_of` scores the surviving subgraph and returns, per vertex of the
/// peeled side, whether it survives this round; the driver applies the
/// mask and iterates until nothing is removed.
///
/// Recorded per round: the round itself, the edges scored
/// ([`Counter::RecomputeEdges`] — the recomputation volume of the
/// score-from-scratch scheme), vertices and edges removed, the
/// `tip_removed_per_round` series, and a `tip_round` span per round so
/// the shrinking cost of successive rounds shows on the timeline.
fn peel_to_fixed_point<R, F>(
    g: &BipartiteGraph,
    side: Side,
    rec: &mut R,
    mut mask_of: F,
) -> TipResult
where
    R: Recorder,
    F: FnMut(&BipartiteGraph) -> Vec<bool>,
{
    let nside = g.nvertices(side);
    let mut keep = vec![true; nside];
    let mut current = g.clone();
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        if R::ENABLED {
            rec.span_enter("tip_round");
            rec.incr(Counter::PeelRounds, 1);
            rec.incr(Counter::RecomputeEdges, current.nedges() as u64);
        }
        let mask = mask_of(&current);
        let mut removed = 0u64;
        for (i, keep_i) in keep.iter_mut().enumerate() {
            if *keep_i && !mask[i] {
                *keep_i = false;
                removed += 1;
            }
        }
        if R::ENABLED {
            rec.incr(Counter::PeeledVertices, removed);
            rec.series_push("tip_removed_per_round", removed as f64);
        }
        if removed == 0 {
            if R::ENABLED {
                rec.span_exit("tip_round");
            }
            break;
        }
        let edges_before = current.nedges();
        current = match side {
            Side::V1 => current.masked(&keep, &vec![true; g.nv2()]),
            Side::V2 => current.masked(&vec![true; g.nv1()], &keep),
        };
        if R::ENABLED {
            rec.incr(
                Counter::PeeledEdges,
                (edges_before - current.nedges()) as u64,
            );
            rec.span_exit("tip_round");
        }
    }
    finish(g, side, keep, rounds)
}

/// Extract the k-tip of `g` on `side` by iterated wedge-expansion scoring.
///
/// ```
/// use bfly_core::peel::k_tip;
/// use bfly_graph::{BipartiteGraph, Side};
///
/// // A butterfly plus a pendant vertex: the pendant is not in any
/// // butterfly, so the 1-tip removes it and keeps the biclique.
/// let g = BipartiteGraph::from_edges(3, 2, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 1)])?;
/// let r = k_tip(&g, Side::V1, 1);
/// assert_eq!(r.keep, vec![true, true, false]);
/// # Ok::<(), bfly_sparse::SparseError>(())
/// ```
pub fn k_tip(g: &BipartiteGraph, side: Side, k: u64) -> TipResult {
    k_tip_recorded(g, side, k, &mut NoopRecorder)
}

/// [`k_tip`] reporting round counts, removal volumes, and recomputation
/// work through `rec`.
pub fn k_tip_recorded<R: Recorder>(
    g: &BipartiteGraph,
    side: Side,
    k: u64,
    rec: &mut R,
) -> TipResult {
    peel_to_fixed_point(g, side, rec, |cur| {
        butterflies_per_vertex(cur, side)
            .into_iter()
            .map(|s| s >= k)
            .collect()
    })
}

/// Parallel [`k_tip`]: per-round scores computed with the rayon
/// per-vertex counter. Identical output, rounds dominated by the scoring
/// sweep parallelise.
pub fn k_tip_parallel(g: &BipartiteGraph, side: Side, k: u64) -> TipResult {
    k_tip_parallel_recorded(g, side, k, &mut NoopRecorder)
}

/// [`k_tip_parallel`] reporting work counters through `rec`.
pub fn k_tip_parallel_recorded<R: Recorder>(
    g: &BipartiteGraph,
    side: Side,
    k: u64,
    rec: &mut R,
) -> TipResult {
    peel_to_fixed_point(g, side, rec, |cur| {
        crate::vertex_counts::butterflies_per_vertex_parallel(cur, side)
            .into_iter()
            .map(|s| s >= k)
            .collect()
    })
}

/// The literal matrix formulation (eqs. 19–22): per round, `B = A·Aᵀ` via
/// SpGEMM, `s` from the eq. 19 diagonal (corrected to whole butterflies,
/// see [`crate::vertex_counts`]), threshold mask, Hadamard onto `A`
/// (eq. 22, realised as row/column masking by the shared driver).
pub fn k_tip_matrix(g: &BipartiteGraph, side: Side, k: u64) -> TipResult {
    peel_to_fixed_point(g, side, &mut NoopRecorder, |cur| {
        let scores = butterflies_per_vertex_algebraic(cur, side);
        bfly_sparse::ops::threshold_mask(&scores, k)
    })
}

/// The Fig. 8 "look-ahead" round: one triangular sweep computes every
/// vertex's full score `s` and emits its mask bit `μ = s ≥ k` the moment
/// the sweep passes it. Pair contributions are charged to both endpoints
/// when the smaller-indexed one is processed, so by the time the sweep
/// reaches vertex `u`, `s[u]` has received all pairs `{w, u}` with `w < u`
/// (from earlier iterations) and all pairs `{u, w}` with `w > u` (from the
/// current look-ahead expansion) — i.e. it is final.
fn lookahead_scores_and_mask(g: &BipartiteGraph, side: Side, k: u64) -> (Vec<u64>, Vec<bool>) {
    let (part_adj, other_adj) = match side {
        Side::V1 => (g.biadjacency(), g.biadjacency_t()),
        Side::V2 => (g.biadjacency_t(), g.biadjacency()),
    };
    let n = part_adj.nrows();
    let mut s = vec![0u64; n];
    let mut mask = vec![false; n];
    let mut spa = Spa::<u64>::new(n);
    for u in 0..n {
        let u32v = u as u32;
        for &j in part_adj.row(u) {
            let row = other_adj.row(j as usize);
            let cut = row.partition_point(|&w| w <= u32v);
            for &w in &row[cut..] {
                spa.scatter(w, 1);
            }
        }
        for (w, cnt) in spa.entries() {
            let pair = choose2(cnt);
            s[u] += pair;
            s[w as usize] += pair;
        }
        spa.clear();
        // s[u] is final here: the mask bit can be emitted immediately
        // (the σ₁/μ₁ fusion of Fig. 8).
        mask[u] = s[u] >= k;
    }
    (s, mask)
}

/// k-tip via the fused look-ahead rounds of Fig. 8.
pub fn k_tip_lookahead(g: &BipartiteGraph, side: Side, k: u64) -> TipResult {
    peel_to_fixed_point(g, side, &mut NoopRecorder, |cur| {
        lookahead_scores_and_mask(cur, side, k).1
    })
}

/// Tip number of every vertex on `side`: the largest `k` for which the
/// vertex is contained in the k-tip. Runs the flat bucket-queue engine
/// ([`super::parallel::tip_numbers_with_chunks`]) sequentially: each
/// round removes the whole minimum bucket and repairs survivors by a
/// wedge expansion from the removed frontier over the *remaining* graph.
pub fn tip_numbers(g: &BipartiteGraph, side: Side) -> Vec<u64> {
    super::parallel::tip_numbers_with_chunks(g, side, 1, &mut NoopRecorder)
}

/// [`tip_numbers`] reporting rounds, bucket sizes, and repair volumes
/// through `rec`.
pub fn tip_numbers_recorded<R: Recorder>(g: &BipartiteGraph, side: Side, rec: &mut R) -> Vec<u64> {
    super::parallel::tip_numbers_with_chunks(g, side, 1, rec)
}

/// Alias of [`tip_numbers`], retained from when the bucket queue was the
/// alternative formulation rather than the default.
pub fn tip_numbers_bucket(g: &BipartiteGraph, side: Side) -> Vec<u64> {
    tip_numbers(g, side)
}

/// The original one-vertex-at-a-time formulation: a lazy binary min-heap
/// of (score, vertex), stale entries skipped on pop, scores repaired per
/// removed vertex. Independently implemented from the bucket engine —
/// the oracle the differential tests compare against. Test support only.
#[cfg(any(test, feature = "testkit"))]
pub fn tip_numbers_oracle(g: &BipartiteGraph, side: Side) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let (part_adj, other_adj) = match side {
        Side::V1 => (g.biadjacency(), g.biadjacency_t()),
        Side::V2 => (g.biadjacency_t(), g.biadjacency()),
    };
    let n = part_adj.nrows();
    let mut scores = butterflies_per_vertex(g, side);
    let mut alive = vec![true; n];
    let mut tip = vec![0u64; n];
    // Lazy min-heap of (score, vertex); stale entries skipped on pop.
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = (0..n as u32)
        .map(|u| Reverse((scores[u as usize], u)))
        .collect();
    let mut spa = Spa::<u64>::new(n);
    let mut k = 0u64;
    while let Some(Reverse((score, u))) = heap.pop() {
        let ux = u as usize;
        if !alive[ux] || score != scores[ux] {
            continue; // stale
        }
        k = k.max(score);
        tip[ux] = k;
        alive[ux] = false;
        // Pairwise butterfly counts between u and every surviving partner.
        for &j in part_adj.row(ux) {
            for &w in other_adj.row(j as usize) {
                if alive[w as usize] {
                    spa.scatter(w, 1);
                }
            }
        }
        for (w, cnt) in spa.entries() {
            let shared = choose2(cnt);
            if shared > 0 {
                let wx = w as usize;
                scores[wx] -= shared;
                heap.push(Reverse((scores[wx], w)));
            }
        }
        spa.clear();
    }
    tip
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfly_graph::generators::{uniform_exact, with_planted_biclique};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn verify_is_fixed_point(_g: &BipartiteGraph, side: Side, k: u64, res: &TipResult) {
        // Every surviving vertex participates in ≥ k butterflies within the
        // subgraph, i.e. the result satisfies the k-tip definition.
        let scores = butterflies_per_vertex(&res.subgraph, side);
        for (i, &keep) in res.keep.iter().enumerate() {
            if keep {
                assert!(
                    scores[i] >= k,
                    "vertex {i} kept with only {} butterflies (k = {k})",
                    scores[i]
                );
            }
        }
    }

    #[test]
    fn complete_graph_survives_small_k() {
        // K_{3,3}: every V1 vertex in 6 butterflies.
        let g = BipartiteGraph::complete(3, 3);
        let r = k_tip(&g, Side::V1, 6);
        assert!(r.keep.iter().all(|&b| b));
        let r = k_tip(&g, Side::V1, 7);
        assert!(r.keep.iter().all(|&b| !b));
    }

    #[test]
    fn three_implementations_agree() {
        let mut rng = StdRng::seed_from_u64(5);
        let base = uniform_exact(25, 25, 70, &mut rng);
        let g = with_planted_biclique(&base, &[0, 1, 2, 3], &[0, 1, 2, 3]);
        for side in [Side::V1, Side::V2] {
            for k in [1u64, 2, 5, 9, 20] {
                let a = k_tip(&g, side, k);
                let b = k_tip_matrix(&g, side, k);
                let c = k_tip_lookahead(&g, side, k);
                let d = k_tip_parallel(&g, side, k);
                assert_eq!(a.keep, b.keep, "k={k} {side:?} matrix");
                assert_eq!(a.keep, c.keep, "k={k} {side:?} lookahead");
                assert_eq!(a.keep, d.keep, "k={k} {side:?} parallel");
                assert_eq!(a.rounds, d.rounds);
                verify_is_fixed_point(&g, side, k, &a);
            }
        }
    }

    #[test]
    fn planted_biclique_survives_peeling() {
        // Sparse noise + K_{4,4} block: at k = C(3,1)·C(4,2)/... each block
        // V1 vertex is in 3·C(4,2) = 18 block butterflies; noise vertices
        // are in far fewer, so a moderate k isolates the block.
        let mut rng = StdRng::seed_from_u64(6);
        let base = uniform_exact(40, 40, 60, &mut rng);
        let block_v1 = [10u32, 11, 12, 13];
        let block_v2 = [20u32, 21, 22, 23];
        let g = with_planted_biclique(&base, &block_v1, &block_v2);
        let r = k_tip(&g, Side::V1, 18);
        for &u in &block_v1 {
            assert!(r.keep[u as usize], "block vertex {u} should survive");
        }
        verify_is_fixed_point(&g, Side::V1, 18, &r);
    }

    #[test]
    fn nesting_property() {
        // k2 ≥ k1 ⇒ k2-tip ⊆ k1-tip.
        let mut rng = StdRng::seed_from_u64(8);
        let g = with_planted_biclique(
            &uniform_exact(30, 30, 90, &mut rng),
            &[0, 1, 2, 3, 4],
            &[0, 1, 2, 3, 4],
        );
        let r1 = k_tip(&g, Side::V1, 2);
        let r2 = k_tip(&g, Side::V1, 10);
        for i in 0..30 {
            if r2.keep[i] {
                assert!(r1.keep[i], "10-tip member {i} missing from 2-tip");
            }
        }
    }

    #[test]
    fn tip_numbers_are_consistent_with_k_tip_membership() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = with_planted_biclique(
            &uniform_exact(20, 20, 50, &mut rng),
            &[0, 1, 2],
            &[0, 1, 2, 3],
        );
        for side in [Side::V1, Side::V2] {
            let tn = tip_numbers(&g, side);
            // For several thresholds, the k-tip membership must equal
            // {v : tip_number(v) ≥ k}.
            for k in [1u64, 2, 3, 5, 8] {
                let r = k_tip(&g, side, k);
                for (i, &keep) in r.keep.iter().enumerate() {
                    assert_eq!(
                        keep,
                        tn[i] >= k,
                        "vertex {i} side {side:?} k={k}: tip number {} vs keep {keep}",
                        tn[i]
                    );
                }
            }
        }
    }

    #[test]
    fn bucket_engine_matches_heap_oracle() {
        let mut rng = StdRng::seed_from_u64(10);
        for trial in 0..4 {
            let g = with_planted_biclique(
                &uniform_exact(25, 25, 70, &mut rng),
                &[0, 1, 2, 3],
                &[0, 1, 2],
            );
            for side in [Side::V1, Side::V2] {
                let want = tip_numbers_oracle(&g, side);
                assert_eq!(tip_numbers(&g, side), want, "trial {trial} side {side:?}");
                assert_eq!(
                    tip_numbers_bucket(&g, side),
                    want,
                    "trial {trial} side {side:?} alias"
                );
                assert_eq!(
                    super::super::parallel::tip_numbers_parallel(&g, side),
                    want,
                    "trial {trial} side {side:?} parallel"
                );
            }
        }
    }

    #[test]
    fn zero_k_keeps_everything() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 1)]).unwrap();
        let r = k_tip(&g, Side::V1, 0);
        assert!(r.keep.iter().all(|&b| b));
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn butterfly_free_graph_peels_completely_for_k1() {
        let g = BipartiteGraph::from_edges(3, 2, &[(0, 0), (1, 0), (1, 1), (2, 1)]).unwrap();
        let r = k_tip(&g, Side::V1, 1);
        assert!(r.keep.iter().all(|&b| !b));
        assert_eq!(tip_numbers(&g, Side::V1), vec![0, 0, 0]);
    }
}
