//! Flat bucket queue for peeling (the ParButterfly/Julienne structure).
//!
//! Peeling repeatedly extracts *all* items of minimum score, and scores
//! only ever decrease — the access pattern a comparison-based priority
//! queue wastes log factors on. [`BucketQueue`] keeps a fixed window of
//! [`WINDOW`] open buckets (a `Vec<Vec<u32>>` indexed by `score - base`)
//! plus an overflow list for items currently scored past the window.
//! Pushes are O(1); extract-min scans forward from a monotone cursor, so
//! the total scan cost over a whole decomposition is
//! `O(pushes + WINDOW · rebuckets)`.
//!
//! Entries are *lazy*: a score decrease just pushes a fresh entry without
//! deleting the stale one. The consumer filters at drain time — an entry
//! in bucket `b` is live iff the item is still alive and its current
//! score is exactly `base + b`. Because scores strictly decrease between
//! pushes of the same item, at most one entry per item is ever live.
//!
//! When every open bucket has been exhausted, the remaining live items
//! all sit in overflow; the queue re-bases the window at their minimum
//! current score and redistributes ([`BucketQueue::rebucket`] — the
//! "shift the window" step of Julienne-style bucketing).

/// Number of simultaneously open buckets. Peel levels move slowly (each
/// round's clamp keeps new scores at or above the current level), so a
/// modest window makes rebuckets rare while keeping the structure flat.
pub const WINDOW: usize = 1024;

/// Bucket queue over items `0..n` with `u64` scores.
#[derive(Debug)]
pub struct BucketQueue {
    /// Score of `buckets[0]`.
    base: u64,
    /// Next open bucket to scan; never retreats within a window.
    cursor: usize,
    buckets: Vec<Vec<u32>>,
    /// Items whose score at push time was `>= base + WINDOW`.
    overflow: Vec<u32>,
}

impl BucketQueue {
    /// Empty queue (capacity hints only; items carry their own ids).
    pub fn new() -> Self {
        BucketQueue {
            base: 0,
            cursor: 0,
            buckets: (0..WINDOW).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
        }
    }

    /// Insert (or lazily re-insert after a score decrease).
    #[inline]
    pub fn push(&mut self, item: u32, score: u64) {
        debug_assert!(score >= self.base + self.cursor as u64 || self.cursor == 0);
        let off = score - self.base;
        if off < WINDOW as u64 {
            self.buckets[off as usize].push(item);
        } else {
            self.overflow.push(item);
        }
    }

    /// Shift the window: re-base at the minimum current score of the
    /// live overflow items and redistribute them. Returns `false` when
    /// nothing live remains.
    fn rebucket(&mut self, scores: &[u64], alive: &[bool]) -> bool {
        let mut pending = std::mem::take(&mut self.overflow);
        pending.retain(|&i| alive[i as usize]);
        // Lazy entries can duplicate an item across pushes; dedup so a
        // rebucket inserts each live item exactly once (sorting also
        // makes the redistributed bucket order deterministic).
        pending.sort_unstable();
        pending.dedup();
        let Some(min) = pending.iter().map(|&i| scores[i as usize]).min() else {
            return false;
        };
        self.base = min;
        self.cursor = 0;
        for item in pending {
            self.push(item, scores[item as usize]);
        }
        true
    }

    /// Drain the minimum non-empty bucket into a frontier: every live
    /// item whose current score equals the bucket score. Accepted items
    /// are marked dead in `alive` (which also deduplicates lazy
    /// entries); stale entries are dropped. Returns `None` once no live
    /// item remains anywhere.
    pub fn pop_min_bucket(
        &mut self,
        scores: &[u64],
        alive: &mut [bool],
    ) -> Option<(u64, Vec<u32>)> {
        loop {
            while self.cursor < WINDOW {
                let score = self.base + self.cursor as u64;
                if !self.buckets[self.cursor].is_empty() {
                    let mut frontier = Vec::new();
                    // Drain rather than take: the same bucket stays open
                    // for this round's clamped re-insertions.
                    for item in self.buckets[self.cursor].drain(..) {
                        let ix = item as usize;
                        if alive[ix] && scores[ix] == score {
                            alive[ix] = false;
                            frontier.push(item);
                        }
                    }
                    if !frontier.is_empty() {
                        return Some((score, frontier));
                    }
                    continue; // bucket was all stale entries; rescan it
                }
                self.cursor += 1;
            }
            if !self.rebucket(scores, alive) {
                return None;
            }
        }
    }
}

impl Default for BucketQueue {
    fn default() -> Self {
        BucketQueue::new()
    }
}

/// O(1)-clear membership set over `0..n` (the [`bfly_sparse::Spa`]
/// generation-stamp trick without values): marks the current round's
/// peel frontier so the wing kernel can distinguish "removed this round"
/// from "removed earlier".
#[derive(Debug)]
pub struct StampSet {
    stamp: Vec<u32>,
    generation: u32,
}

impl StampSet {
    /// Empty set over the index range `0..n`.
    pub fn new(n: usize) -> Self {
        StampSet {
            stamp: vec![0; n],
            generation: 1,
        }
    }

    /// Insert `i` (idempotent within a generation).
    #[inline]
    pub fn insert(&mut self, i: u32) {
        self.stamp[i as usize] = self.generation;
    }

    /// Whether `i` is in the set this generation.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        self.stamp[i as usize] == self.generation
    }

    /// Remove everything in O(1) via a generation bump.
    pub fn clear(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.fill(0);
            self.generation = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference peel over a score vector with explicit deltas applied by
    /// the test; here we just check queue mechanics.
    #[test]
    fn drains_in_score_order_with_lazy_updates() {
        let mut scores = vec![5u64, 0, 3, 3, 700, 2000];
        let mut alive = vec![true; scores.len()];
        let mut q = BucketQueue::new();
        for (i, &s) in scores.iter().enumerate() {
            q.push(i as u32, s);
        }
        let (s, f) = q.pop_min_bucket(&scores, &mut alive).unwrap();
        assert_eq!((s, f), (0, vec![1]));
        // Decrease 4's score mid-peel (lazy re-insert).
        scores[4] = 3;
        q.push(4, 3);
        let (s, f) = q.pop_min_bucket(&scores, &mut alive).unwrap();
        assert_eq!(s, 3);
        assert_eq!(f, vec![2, 3, 4]);
        let (s, f) = q.pop_min_bucket(&scores, &mut alive).unwrap();
        assert_eq!((s, f), (5, vec![0]));
        // 2000 is past the window: reachable only through a rebucket.
        let (s, f) = q.pop_min_bucket(&scores, &mut alive).unwrap();
        assert_eq!((s, f), (2000, vec![5]));
        assert!(q.pop_min_bucket(&scores, &mut alive).is_none());
    }

    #[test]
    fn stale_entries_are_skipped_and_items_dedup() {
        let mut scores = vec![10u64, 10];
        let mut alive = vec![true; 2];
        let mut q = BucketQueue::new();
        q.push(0, 10);
        q.push(1, 10);
        // Item 0 drops twice; both old entries go stale.
        scores[0] = 8;
        q.push(0, 8);
        scores[0] = 7;
        q.push(0, 7);
        let (s, f) = q.pop_min_bucket(&scores, &mut alive).unwrap();
        assert_eq!((s, f), (7, vec![0]));
        let (s, f) = q.pop_min_bucket(&scores, &mut alive).unwrap();
        assert_eq!((s, f), (10, vec![1]));
        assert!(q.pop_min_bucket(&scores, &mut alive).is_none());
    }

    #[test]
    fn overflow_rebuckets_repeatedly() {
        // Scores spread over several windows force multiple rebases.
        let n = 40usize;
        let scores: Vec<u64> = (0..n as u64).map(|i| i * 700).collect();
        let mut alive = vec![true; n];
        let mut q = BucketQueue::new();
        for (i, &s) in scores.iter().enumerate() {
            q.push(i as u32, s);
        }
        let mut seen = Vec::new();
        while let Some((s, f)) = q.pop_min_bucket(&scores, &mut alive) {
            for item in f {
                seen.push((s, item));
            }
        }
        assert_eq!(seen.len(), n);
        assert!(seen.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn stamp_set_clears_in_o1() {
        let mut s = StampSet::new(4);
        s.insert(1);
        s.insert(3);
        assert!(s.contains(1) && s.contains(3) && !s.contains(0));
        s.clear();
        assert!(!s.contains(1) && !s.contains(3));
        s.insert(0);
        assert!(s.contains(0));
    }
}
