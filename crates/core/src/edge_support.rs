//! Per-edge butterfly support (the `S_w` matrix of the k-wing formulation).
//!
//! The support of edge `(u, v)` is the number of butterflies containing it.
//! Paper eq. 23 derives it combinatorially:
//!
//! ```text
//! supp(u, v) = Σ_{w ∈ N(v)} |N(u) ∩ N(w)| − |N(u)| − |N(v)| + 1
//! ```
//!
//! and eq. 25 packages the computation for all edges at once:
//! `S_w = (AAᵀA − diag(AAᵀ)·1ᵀ − 1·diag(AᵀA)ᵀ + J) ∘ A`.
//!
//! Two implementations again: a wedge-expansion sweep (production) and a
//! literal SpGEMM evaluation of eq. 25 (validation). Supports are returned
//! in the row-major edge order of [`BipartiteGraph::edges`], plus a helper
//! shaping them as a CSR matrix aligned with `A`.

use bfly_graph::BipartiteGraph;
use bfly_sparse::ops::spgemm;
use bfly_sparse::{CsrMatrix, Spa};
use rayon::prelude::*;

/// Support of every edge, in row-major edge order.
///
/// One wedge expansion per V1 vertex `u` fills `cnt[w] = |N(u) ∩ N(w)|`;
/// each incident edge `(u, v)` then reads `Σ_{w∈N(v)} cnt[w]` (which
/// includes `w = u` contributing `|N(u)|`) and applies eq. 23's
/// corrections. Total cost `O(Σ_v deg(v)²)` — the same wedge volume the
/// counting algorithms traverse.
pub fn edge_supports(g: &BipartiteGraph) -> Vec<u64> {
    let a = g.biadjacency();
    let at = g.biadjacency_t();
    let m = g.nv1();
    let mut spa = Spa::<u64>::new(m);
    let mut out = Vec::with_capacity(g.nedges());
    for u in 0..m {
        out.extend(supports_for_vertex(g, a, at, u, &mut spa));
    }
    out
}

/// Fallible, overflow-checked [`edge_supports`]: validates the graph,
/// runs the same wedge-expansion sweep with every eq. 23 sum routed
/// through a [`bfly_sparse::CheckedAccum`], and keeps the final
/// correction in `u128` so neither the wedge sum nor the subtraction can
/// wrap. A support exceeding `u64` fails with
/// [`BflyError::CountOverflow`](crate::error::BflyError).
pub fn try_edge_supports(g: &BipartiteGraph) -> crate::error::Result<Vec<u64>> {
    crate::error::validate_graph(g)?;
    let a = g.biadjacency();
    let at = g.biadjacency_t();
    let m = g.nv1();
    let mut spa = Spa::<u64>::new(m);
    let mut out = Vec::with_capacity(g.nedges());
    for u in 0..m {
        for &v in a.row(u) {
            for &w in at.row(v as usize) {
                spa.scatter(w, 1);
            }
        }
        let deg_u = g.deg_v1(u) as u128;
        for &v in a.row(u) {
            let deg_v = g.deg_v2(v as usize) as u128;
            let mut acc = bfly_sparse::CheckedAccum::new();
            for &w in at.row(v as usize) {
                acc.add(spa.get(w));
            }
            // eq. 23 in u128: wedge_sum + 1 − deg_u − deg_v is
            // non-negative for any structurally valid graph (the w = u
            // term alone contributes deg_u); validation above makes a
            // violation impossible, but check rather than trust.
            let support = (acc.value() + 1)
                .checked_sub(deg_u + deg_v)
                .ok_or_else(|| crate::error::BflyError::InvalidGraph {
                    reason: format!("edge ({u}, {v}): eq. 23 wedge sum below degree correction"),
                })?;
            out.push(u64::try_from(support).map_err(|_| {
                crate::error::BflyError::CountOverflow {
                    partial: support,
                    context: "edge_supports",
                }
            })?);
        }
        spa.clear();
    }
    Ok(out)
}

/// Parallel [`edge_supports`].
pub fn edge_supports_parallel(g: &BipartiteGraph) -> Vec<u64> {
    let a = g.biadjacency();
    let at = g.biadjacency_t();
    let m = g.nv1();
    let per_vertex: Vec<Vec<u64>> = (0..m)
        .into_par_iter()
        .map_init(
            || Spa::<u64>::new(m),
            |spa, u| supports_for_vertex(g, a, at, u, spa),
        )
        .collect();
    per_vertex.into_iter().flatten().collect()
}

fn supports_for_vertex(
    g: &BipartiteGraph,
    a: &bfly_sparse::Pattern,
    at: &bfly_sparse::Pattern,
    u: usize,
    spa: &mut Spa<u64>,
) -> Vec<u64> {
    // cnt[w] = |N(u) ∩ N(w)| for every w ∈ V1 reachable in two hops.
    for &v in a.row(u) {
        for &w in at.row(v as usize) {
            spa.scatter(w, 1);
        }
    }
    let deg_u = g.deg_v1(u) as u64;
    let mut supports = Vec::with_capacity(a.row_nnz(u));
    for &v in a.row(u) {
        let deg_v = g.deg_v2(v as usize) as u64;
        let mut wedge_sum = 0u64; // Σ_{w ∈ N(v)} cnt[w], includes w = u.
        for &w in at.row(v as usize) {
            wedge_sum += spa.get(w);
        }
        // eq. 23: subtract |N(u)| (the w = u term) and the |N(v)| − 1
        // wedges through v itself, each counted once in cnt via v.
        // Evaluation order keeps the intermediate non-negative:
        // wedge_sum ≥ deg_u + deg_v − 1 always holds (w = u contributes
        // deg_u and each other w ∈ N(v) at least the shared wedge via v).
        supports.push(wedge_sum + 1 - deg_u - deg_v);
    }
    spa.clear();
    supports
}

/// Literal eq. 25 evaluation: `S_w = (AAᵀA − deg₁·1ᵀ − 1·deg₂ᵀ + J) ∘ A`,
/// computed sparsely by restricting the correction terms to the pattern of
/// `A`. Returns the same row-major edge order as [`edge_supports`].
pub fn edge_supports_algebraic(g: &BipartiteGraph) -> Vec<u64> {
    let a: CsrMatrix<u64> = g.to_csr();
    let at = a.transpose();
    let b = spgemm(&a, &at).expect("A·Aᵀ shapes conform");
    let bap = spgemm(&b, &a).expect("(AAᵀ)·A shapes conform");
    let mut out = Vec::with_capacity(g.nedges());
    for u in 0..g.nv1() {
        let deg_u = g.deg_v1(u) as u64;
        for &v in g.neighbors_v1(u) {
            let deg_v = g.deg_v2(v as usize) as u64;
            let walks = bap.get(u, v); // (AAᵀA)_{uv}
            out.push(walks + 1 - deg_u - deg_v);
        }
    }
    out
}

/// Eq. 25 with the Hadamard mask *pushed into* the product: the
/// `(AAᵀA) ∘ A` term is computed by a masked SpGEMM that only evaluates
/// dot products at positions where `A` is nonzero, skipping the enormous
/// fill-in of the unmasked `AAᵀA`. Returns the same row-major edge order.
pub fn edge_supports_masked_spgemm(g: &BipartiteGraph) -> Vec<u64> {
    let a: CsrMatrix<u64> = g.to_csr();
    let at = a.transpose();
    let b = spgemm(&a, &at).expect("A·Aᵀ shapes conform");
    let walks = bfly_sparse::spgemm_masked(&b, &a, g.biadjacency(), bfly_sparse::PlusTimes)
        .expect("(AAᵀ)·A ∘ A shapes conform");
    let mut out = Vec::with_capacity(g.nedges());
    for u in 0..g.nv1() {
        let deg_u = g.deg_v1(u) as u64;
        for &v in g.neighbors_v1(u) {
            let deg_v = g.deg_v2(v as usize) as u64;
            out.push(walks.get(u, v) + 1 - deg_u - deg_v);
        }
    }
    out
}

/// Shape the supports as a CSR matrix with exactly the pattern of `A`
/// (the `S_w` of eq. 25).
pub fn support_matrix(g: &BipartiteGraph, supports: &[u64]) -> CsrMatrix<u64> {
    assert_eq!(supports.len(), g.nedges());
    let p = g.biadjacency();
    CsrMatrix::try_from_raw_parts(
        p.nrows(),
        p.ncols(),
        p.ptr().to_vec(),
        p.indices().to_vec(),
        supports.to_vec(),
    )
    .expect("pattern arrays are structurally valid")
}

/// Convenience: total butterflies from edge supports. Every butterfly has
/// four edges, so `Σ supp = 4·Ξ`.
pub fn total_from_supports(supports: &[u64]) -> u64 {
    let s: u64 = supports.iter().sum();
    debug_assert_eq!(s % 4, 0);
    s / 4
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_butterfly() -> BipartiteGraph {
        BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap()
    }

    #[test]
    fn single_butterfly_every_edge_support_one() {
        let g = one_butterfly();
        assert_eq!(edge_supports(&g), vec![1, 1, 1, 1]);
        assert_eq!(total_from_supports(&edge_supports(&g)), 1);
    }

    #[test]
    fn complete_graph_supports() {
        // K_{3,3}: each edge is in (3−1)·(3−1) = 4 butterflies.
        let g = BipartiteGraph::complete(3, 3);
        let s = edge_supports(&g);
        assert!(s.iter().all(|&x| x == 4));
        assert_eq!(total_from_supports(&s), 9);
    }

    #[test]
    fn wedge_expansion_matches_algebraic() {
        let g = BipartiteGraph::from_edges(
            5,
            5,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 1),
                (2, 2),
                (3, 2),
                (3, 3),
                (4, 3),
                (4, 4),
                (0, 4),
            ],
        )
        .unwrap();
        let a = edge_supports(&g);
        let b = edge_supports_algebraic(&g);
        let c = edge_supports_parallel(&g);
        let d = edge_supports_masked_spgemm(&g);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, d);
    }

    #[test]
    fn supports_sum_to_four_times_count() {
        let g = BipartiteGraph::from_edges(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (2, 1),
                (2, 2),
                (3, 0),
                (3, 2),
            ],
        )
        .unwrap();
        let s = edge_supports(&g);
        assert_eq!(total_from_supports(&s), crate::spec::count_brute_force(&g));
    }

    #[test]
    fn support_matrix_aligns_with_adjacency() {
        let g = one_butterfly();
        let s = support_matrix(&g, &edge_supports(&g));
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.get(0, 0), 1);
        assert_eq!(s.get(1, 1), 1);
    }

    #[test]
    fn tree_edges_have_zero_support() {
        // A path has no butterflies at all.
        let g = BipartiteGraph::from_edges(3, 2, &[(0, 0), (1, 0), (1, 1), (2, 1)]).unwrap();
        assert!(edge_supports(&g).iter().all(|&x| x == 0));
    }
}
