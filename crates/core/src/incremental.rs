//! Incremental (dynamic) butterfly counting.
//!
//! Streaming bipartite graphs (the setting of the approximate-counting
//! literature the paper cites) need the count maintained under edge
//! insertions and deletions without recounting from scratch. The delta
//! for an edge `(u, v)` is exactly its *support* in the graph containing
//! the edge (paper eq. 23): inserting creates `supp(u, v)` butterflies,
//! deleting destroys the same number. [`IncrementalCounter`] maintains
//! adjacency as sorted vecs with O(deg) updates and computes each delta
//! with one wedge expansion — `O(Σ_{w ∈ N(v)} deg(w))` per update.

use bfly_graph::BipartiteGraph;
use bfly_telemetry::{Counter, NoopRecorder, Recorder};
use std::collections::HashMap;

/// Dynamic butterfly counter over an evolving bipartite graph.
///
/// ```
/// use bfly_core::IncrementalCounter;
///
/// let mut c = IncrementalCounter::new(2, 2);
/// c.insert_edge(0, 0);
/// c.insert_edge(0, 1);
/// c.insert_edge(1, 0);
/// assert_eq!(c.count(), 0);
/// // The fourth edge closes the butterfly.
/// assert_eq!(c.insert_edge(1, 1), 1);
/// assert_eq!(c.count(), 1);
/// assert_eq!(c.remove_edge(0, 1), 1);
/// assert_eq!(c.count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalCounter {
    adj_v1: Vec<Vec<u32>>, // sorted neighbour lists
    adj_v2: Vec<Vec<u32>>,
    count: u64,
    nedges: usize,
}

impl IncrementalCounter {
    /// Empty graph with fixed vertex-set sizes.
    pub fn new(nv1: usize, nv2: usize) -> Self {
        Self {
            adj_v1: vec![Vec::new(); nv1],
            adj_v2: vec![Vec::new(); nv2],
            count: 0,
            nedges: 0,
        }
    }

    /// Seed from an existing graph (count computed once with the family).
    pub fn from_graph(g: &BipartiteGraph) -> Self {
        let adj_v1 = (0..g.nv1()).map(|u| g.neighbors_v1(u).to_vec()).collect();
        let adj_v2 = (0..g.nv2()).map(|v| g.neighbors_v2(v).to_vec()).collect();
        Self {
            adj_v1,
            adj_v2,
            count: crate::family::count(g, crate::family::Invariant::Inv2),
            nedges: g.nedges(),
        }
    }

    /// Current butterfly count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current edge count.
    pub fn nedges(&self) -> usize {
        self.nedges
    }

    /// Whether `(u, v)` is currently present.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj_v1[u as usize].binary_search(&v).is_ok()
    }

    /// Support of `(u, v)` computed as if the edge were present: the
    /// number of `(w, x)` with `w ∈ N(v)\{u}`, `x ∈ N(u)\{v}`, and edge
    /// `(w, x)` present.
    fn support_with_edge<R: Recorder>(&self, u: u32, v: u32, rec: &mut R) -> u64 {
        // cnt over two-hop walks from u restricted to partners w ∈ N(v).
        // Small-side hashing keeps this cheap without a full-size SPA.
        let nu = &self.adj_v1[u as usize];
        let mut delta = 0u64;
        let mut wedge_work = 0u64;
        let mut cnt: HashMap<u32, u64> = HashMap::new();
        for &x in nu {
            if x == v {
                continue;
            }
            if R::ENABLED {
                wedge_work += self.adj_v2[x as usize].len() as u64;
            }
            for &w in &self.adj_v2[x as usize] {
                if w != u {
                    *cnt.entry(w).or_insert(0) += 1;
                }
            }
        }
        if R::ENABLED {
            wedge_work += self.adj_v2[v as usize].len() as u64;
            rec.incr(Counter::IncWedgeWork, wedge_work);
            rec.hist_record("inc_wedge_work", wedge_work);
        }
        for &w in &self.adj_v2[v as usize] {
            if w != u {
                if let Some(&c) = cnt.get(&w) {
                    delta += c;
                }
            }
        }
        delta
    }

    /// Insert `(u, v)`; returns the number of butterflies created
    /// (0 if the edge already existed).
    pub fn insert_edge(&mut self, u: u32, v: u32) -> u64 {
        self.insert_edge_recorded(u, v, &mut NoopRecorder)
    }

    /// [`IncrementalCounter::insert_edge`] reporting the update and its
    /// wedge work through `rec`.
    pub fn insert_edge_recorded<R: Recorder>(&mut self, u: u32, v: u32, rec: &mut R) -> u64 {
        let row = &mut self.adj_v1[u as usize];
        let pos = match row.binary_search(&v) {
            Ok(_) => return 0,
            Err(p) => p,
        };
        if R::ENABLED {
            rec.span_enter("inc_insert");
        }
        let delta = self.support_with_edge(u, v, rec);
        if R::ENABLED {
            rec.incr(Counter::IncInserts, 1);
        }
        self.adj_v1[u as usize].insert(pos, v);
        let col = &mut self.adj_v2[v as usize];
        let cpos = col.binary_search(&u).unwrap_err();
        col.insert(cpos, u);
        self.count += delta;
        self.nedges += 1;
        if R::ENABLED {
            rec.span_exit("inc_insert");
        }
        delta
    }

    /// Remove `(u, v)`; returns the number of butterflies destroyed
    /// (0 if the edge was absent).
    pub fn remove_edge(&mut self, u: u32, v: u32) -> u64 {
        self.remove_edge_recorded(u, v, &mut NoopRecorder)
    }

    /// [`IncrementalCounter::remove_edge`] reporting the update and its
    /// wedge work through `rec`.
    pub fn remove_edge_recorded<R: Recorder>(&mut self, u: u32, v: u32, rec: &mut R) -> u64 {
        let row = &mut self.adj_v1[u as usize];
        let pos = match row.binary_search(&v) {
            Ok(p) => p,
            Err(_) => return 0,
        };
        if R::ENABLED {
            rec.span_enter("inc_delete");
        }
        row.remove(pos);
        let col = &mut self.adj_v2[v as usize];
        let cpos = col.binary_search(&u).unwrap();
        col.remove(cpos);
        // Support in the graph *with* the edge = butterflies destroyed.
        let delta = self.support_with_edge(u, v, rec);
        if R::ENABLED {
            rec.incr(Counter::IncDeletes, 1);
        }
        self.count -= delta;
        self.nedges -= 1;
        if R::ENABLED {
            rec.span_exit("inc_delete");
        }
        delta
    }

    /// Materialise the current graph (testing / interoperability).
    pub fn to_graph(&self) -> BipartiteGraph {
        let mut edges = Vec::with_capacity(self.nedges);
        for (u, row) in self.adj_v1.iter().enumerate() {
            for &v in row {
                edges.push((u as u32, v));
            }
        }
        BipartiteGraph::from_edges(self.adj_v1.len(), self.adj_v2.len(), &edges)
            .expect("maintained adjacency is in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::count_brute_force;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn builds_a_butterfly_step_by_step() {
        let mut c = IncrementalCounter::new(2, 2);
        assert_eq!(c.insert_edge(0, 0), 0);
        assert_eq!(c.insert_edge(0, 1), 0);
        assert_eq!(c.insert_edge(1, 0), 0);
        assert_eq!(c.insert_edge(1, 1), 1); // closes the butterfly
        assert_eq!(c.count(), 1);
        assert_eq!(c.remove_edge(0, 0), 1);
        assert_eq!(c.count(), 0);
    }

    #[test]
    fn duplicate_and_missing_edges_are_noops() {
        let mut c = IncrementalCounter::new(2, 2);
        assert_eq!(c.insert_edge(0, 0), 0);
        assert_eq!(c.insert_edge(0, 0), 0);
        assert_eq!(c.nedges(), 1);
        assert_eq!(c.remove_edge(1, 1), 0);
        assert_eq!(c.nedges(), 1);
        assert!(c.has_edge(0, 0));
        assert!(!c.has_edge(1, 1));
    }

    #[test]
    fn random_insert_delete_stream_stays_exact() {
        let mut rng = StdRng::seed_from_u64(77);
        let (m, n) = (15usize, 12usize);
        let mut c = IncrementalCounter::new(m, n);
        for step in 0..400 {
            let u = rng.random_range(0..m as u32);
            let v = rng.random_range(0..n as u32);
            if rng.random_range(0..3) == 0 {
                c.remove_edge(u, v);
            } else {
                c.insert_edge(u, v);
            }
            if step % 50 == 0 {
                let g = c.to_graph();
                assert_eq!(c.count(), count_brute_force(&g), "step {step}");
                assert_eq!(c.nedges(), g.nedges());
            }
        }
        let g = c.to_graph();
        assert_eq!(c.count(), count_brute_force(&g));
    }

    #[test]
    fn seeding_from_graph_matches_family_count() {
        let g = BipartiteGraph::complete(4, 3);
        let mut c = IncrementalCounter::from_graph(&g);
        assert_eq!(c.count(), count_brute_force(&g));
        // Removing one edge of K_{4,3}: that edge is in (4−1)(3−1) = 6
        // butterflies.
        assert_eq!(c.remove_edge(0, 0), 6);
        assert_eq!(c.count(), count_brute_force(&c.to_graph()));
    }

    #[test]
    fn insert_then_remove_roundtrips_count() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (2, 2)]).unwrap();
        let mut c = IncrementalCounter::from_graph(&g);
        let before = c.count();
        let created = c.insert_edge(1, 1);
        let destroyed = c.remove_edge(1, 1);
        assert_eq!(created, destroyed);
        assert_eq!(c.count(), before);
    }
}
