//! Unified error taxonomy for the fallible (`try_*`) API surface.
//!
//! The infallible entry points (`count`, `tip_numbers`, …) keep their
//! original panicking contracts for trusted inputs; everything reachable
//! from untrusted data routes through [`BflyError`] instead. One enum
//! covers the whole workspace so the CLI can map error *classes* to
//! process exit codes and callers can `?` across crate boundaries:
//! `From` bridges lift [`bfly_graph::io::IoError`],
//! [`bfly_sparse::SparseError`], and the telemetry
//! [`ReportError`](bfly_telemetry::ReportError) into it.

use bfly_graph::io::IoError;
use bfly_sparse::SparseError;
use bfly_telemetry::ReportError;

/// Workspace-wide result alias for the fallible API.
pub type Result<T> = std::result::Result<T, BflyError>;

/// Every way a fallible bfly operation can fail.
#[derive(Debug)]
pub enum BflyError {
    /// A graph failed up-front invariant validation (index out of range,
    /// unsorted adjacency, mismatched forward/transpose views, …).
    InvalidGraph {
        /// What the validator found, with the offending location.
        reason: String,
    },
    /// A counting accumulator exceeded `u64`. Carries the exact partial
    /// total (promoted to `u128`, never wrapped) and the site it
    /// overflowed at.
    CountOverflow {
        /// Exact value of the accumulator at the point of failure.
        partial: u128,
        /// Which accumulator overflowed (`"count_partitioned"`, …).
        context: &'static str,
    },
    /// A [`ResourceBudget`](crate::budget::ResourceBudget) limit would be
    /// exceeded and no cheaper fallback exists.
    BudgetExceeded {
        /// Which limit: `"bytes"`, `"wedge_work"`, or `"deadline"`.
        resource: &'static str,
        /// The configured cap.
        limit: u64,
        /// What the operation needed (0 when unknowable, e.g. deadline).
        requested: u64,
    },
    /// Graph loading / file I/O failure.
    Io(IoError),
    /// Sparse-substrate failure (shape mismatch, malformed structure).
    Sparse(SparseError),
    /// Telemetry report ingestion failure.
    Report(ReportError),
}

impl std::fmt::Display for BflyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BflyError::InvalidGraph { reason } => write!(f, "invalid graph: {reason}"),
            BflyError::CountOverflow { partial, context } => write!(
                f,
                "count overflow in {context}: exact total {partial} exceeds u64"
            ),
            BflyError::BudgetExceeded {
                resource,
                limit,
                requested,
            } => {
                if *requested == 0 {
                    write!(f, "resource budget exceeded: {resource} limit {limit}")
                } else {
                    write!(
                        f,
                        "resource budget exceeded: {resource} needs {requested}, limit {limit}"
                    )
                }
            }
            BflyError::Io(e) => write!(f, "{e}"),
            BflyError::Sparse(e) => write!(f, "{e}"),
            BflyError::Report(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BflyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BflyError::Io(e) => Some(e),
            BflyError::Sparse(e) => Some(e),
            BflyError::Report(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IoError> for BflyError {
    fn from(e: IoError) -> Self {
        BflyError::Io(e)
    }
}

impl From<SparseError> for BflyError {
    fn from(e: SparseError) -> Self {
        BflyError::Sparse(e)
    }
}

impl From<ReportError> for BflyError {
    fn from(e: ReportError) -> Self {
        BflyError::Report(e)
    }
}

impl From<std::io::Error> for BflyError {
    fn from(e: std::io::Error) -> Self {
        BflyError::Io(IoError::Io(e))
    }
}

/// Validate the structural invariants every kernel assumes, so `try_*`
/// entry points fail with [`BflyError::InvalidGraph`] up front instead of
/// panicking (or reading out of bounds) mid-kernel. Checks both the
/// forward and transposed biadjacency views: column indices in range,
/// rows strictly sorted (sorted merge and binary-search kernels rely on
/// it), and matching edge totals between the two views. Cost is one
/// O(E) sweep — negligible next to any counting pass.
pub fn validate_graph(g: &bfly_graph::BipartiteGraph) -> Result<()> {
    validate_pattern(g.biadjacency(), g.nv2(), "biadjacency")?;
    validate_pattern(g.biadjacency_t(), g.nv1(), "biadjacency_t")?;
    let (fwd, bwd) = (g.biadjacency().nnz(), g.biadjacency_t().nnz());
    if fwd != bwd {
        return Err(BflyError::InvalidGraph {
            reason: format!("forward view has {fwd} edges but transpose has {bwd}"),
        });
    }
    Ok(())
}

fn validate_pattern(p: &bfly_sparse::Pattern, ncols: usize, what: &str) -> Result<()> {
    for i in 0..p.nrows() {
        let row = p.row(i);
        for (k, &c) in row.iter().enumerate() {
            if c as usize >= ncols {
                return Err(BflyError::InvalidGraph {
                    reason: format!("{what}: row {i} references column {c} >= {ncols}"),
                });
            }
            if k > 0 && row[k - 1] >= c {
                return Err(BflyError::InvalidGraph {
                    reason: format!(
                        "{what}: row {i} not strictly sorted at position {k} ({} then {c})",
                        row[k - 1]
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfly_graph::BipartiteGraph;

    #[test]
    fn valid_graphs_pass() {
        validate_graph(&BipartiteGraph::complete(3, 4)).unwrap();
        validate_graph(&BipartiteGraph::from_edges(2, 2, &[]).unwrap()).unwrap();
        validate_graph(&BipartiteGraph::from_edges(0, 0, &[]).unwrap()).unwrap();
    }

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<BflyError> = vec![
            BflyError::InvalidGraph { reason: "x".into() },
            BflyError::CountOverflow {
                partial: 1 << 70,
                context: "test",
            },
            BflyError::BudgetExceeded {
                resource: "bytes",
                limit: 10,
                requested: 20,
            },
            BflyError::BudgetExceeded {
                resource: "deadline",
                limit: 5,
                requested: 0,
            },
            BflyError::Sparse(SparseError::Malformed("m")),
            BflyError::Report(ReportError::Json("j".into())),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn bridges_lift_foreign_errors() {
        let e: BflyError = SparseError::Malformed("bad").into();
        assert!(matches!(e, BflyError::Sparse(_)));
        let e: BflyError = ReportError::Json("nope".into()).into();
        assert!(matches!(e, BflyError::Report(_)));
        let e: BflyError = std::io::Error::other("io").into();
        assert!(matches!(e, BflyError::Io(IoError::Io(_))));
        let e: BflyError = IoError::Parse {
            line: 3,
            msg: "bad".into(),
        }
        .into();
        assert!(matches!(e, BflyError::Io(IoError::Parse { line: 3, .. })));
    }
}
