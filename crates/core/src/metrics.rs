//! Graph metrics built on butterfly counts.
//!
//! The introduction motivates butterfly counting via the bipartite
//! clustering coefficient [15]: butterflies are the closed quadrilaterals,
//! caterpillars (paths of length 3) the open ones, and their ratio measures
//! how strongly the network closes its wedges into 2×2 bicliques.

use crate::family::{count, Invariant};
use bfly_graph::BipartiteGraph;

/// Number of *caterpillars* (paths with three edges): each edge `(u, v)`
/// is the middle of `(deg u − 1)·(deg v − 1)` three-paths.
pub fn caterpillars(g: &BipartiteGraph) -> u64 {
    g.edges()
        .map(|(u, v)| {
            let du = g.deg_v1(u as usize) as u64;
            let dv = g.deg_v2(v as usize) as u64;
            (du - 1) * (dv - 1)
        })
        .sum()
}

/// Bipartite clustering coefficient `4·Ξ_G / caterpillars` (Sanei-Mehri et
/// al.): the fraction of three-paths that close into a butterfly. `None`
/// when the graph has no three-paths.
pub fn clustering_coefficient(g: &BipartiteGraph) -> Option<f64> {
    let cats = caterpillars(g);
    if cats == 0 {
        return None;
    }
    let xi = count(g, Invariant::Inv2);
    Some(4.0 * xi as f64 / cats as f64)
}

/// All headline metrics in one pass, for reports and examples.
#[derive(Debug, Clone, PartialEq)]
pub struct ButterflyMetrics {
    /// Total butterflies `Ξ_G`.
    pub butterflies: u64,
    /// Wedges with endpoints in V1 (through V2 wedge points).
    pub wedges_v1_endpoints: u64,
    /// Wedges with endpoints in V2 (through V1 wedge points).
    pub wedges_v2_endpoints: u64,
    /// Three-paths.
    pub caterpillars: u64,
    /// `4Ξ / caterpillars`, if defined.
    pub clustering_coefficient: Option<f64>,
}

/// Compute [`ButterflyMetrics`].
pub fn metrics(g: &BipartiteGraph) -> ButterflyMetrics {
    let butterflies = count(g, Invariant::Inv2);
    let cats = caterpillars(g);
    ButterflyMetrics {
        butterflies,
        wedges_v1_endpoints: g.wedges_through_v2(),
        wedges_v2_endpoints: g.wedges_through_v1(),
        caterpillars: cats,
        clustering_coefficient: if cats == 0 {
            None
        } else {
            Some(4.0 * butterflies as f64 / cats as f64)
        },
    }
}

/// Distribution summary of per-vertex butterfly participation on one side.
#[derive(Debug, Clone, PartialEq)]
pub struct ButterflyDistribution {
    /// Vertices with at least one butterfly.
    pub participating: usize,
    /// Maximum per-vertex count.
    pub max: u64,
    /// Mean over all vertices (including zeros).
    pub mean: f64,
    /// Median over all vertices.
    pub median: u64,
    /// Gini coefficient of the counts (0 = uniform, →1 = concentrated).
    pub gini: f64,
}

/// Summarise how unevenly butterflies are spread over one side's vertices
/// — heavy concentration is what the tip decomposition then localises.
pub fn butterfly_distribution(g: &BipartiteGraph, side: bfly_graph::Side) -> ButterflyDistribution {
    let counts = crate::vertex_counts::butterflies_per_vertex(g, side);
    let n = counts.len().max(1);
    let mut sorted = counts.clone();
    sorted.sort_unstable();
    let total: u64 = sorted.iter().sum();
    let participating = sorted.iter().filter(|&&c| c > 0).count();
    let mean = total as f64 / n as f64;
    let median = sorted.get(n / 2).copied().unwrap_or(0);
    // Gini via the sorted-rank formula: G = (2·Σ i·x_i)/(n·Σx) − (n+1)/n.
    let gini = if total == 0 {
        0.0
    } else {
        let weighted: f64 = sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
            .sum();
        (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
    };
    ButterflyDistribution {
        participating,
        max: sorted.last().copied().unwrap_or(0),
        mean,
        median,
        gini,
    }
}

/// Butterfly significance against the fixed-degree null model.
#[derive(Debug, Clone, PartialEq)]
pub struct NullModelResult {
    /// Observed count on the input graph.
    pub observed: u64,
    /// Mean count over the randomised ensemble.
    pub null_mean: f64,
    /// Standard deviation over the ensemble.
    pub null_std: f64,
    /// `(observed − mean) / std`; `None` when the ensemble is degenerate.
    pub z_score: Option<f64>,
}

/// Compare the observed butterfly count against `samples` degree-
/// preserving rewirings (double-edge swaps, `swaps_per_edge · |E|`
/// attempted swaps each). A large positive z-score means the network
/// closes far more 2×2 bicliques than its degree sequence explains — the
/// clustering signal the paper's introduction describes.
pub fn butterfly_null_model<R: rand::Rng>(
    g: &BipartiteGraph,
    samples: usize,
    swaps_per_edge: usize,
    rng: &mut R,
) -> NullModelResult {
    assert!(samples >= 2, "need at least two null samples");
    let observed = count(g, Invariant::Inv2);
    let attempts = swaps_per_edge.saturating_mul(g.nedges()).max(1);
    let counts: Vec<f64> = (0..samples)
        .map(|_| {
            let (h, _) = bfly_graph::rewire::double_edge_swaps(g, attempts, rng);
            count(&h, Invariant::Inv2) as f64
        })
        .collect();
    let mean = counts.iter().sum::<f64>() / samples as f64;
    let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (samples as f64 - 1.0);
    let std = var.sqrt();
    NullModelResult {
        observed,
        null_mean: mean,
        null_std: std,
        z_score: if std > 0.0 {
            Some((observed as f64 - mean) / std)
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfly_graph::generators::{uniform_exact, with_planted_biclique};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_closes_every_caterpillar_into_a_butterfly() {
        // In K_{n,n} every 3-path closes: coefficient exactly… let's check
        // K_{2,2}: 4 edges, each middle of (2−1)(2−1) = 1 caterpillar → 4
        // caterpillars; 1 butterfly → 4·1/4 = 1.0.
        let g = BipartiteGraph::complete(2, 2);
        assert_eq!(caterpillars(&g), 4);
        assert_eq!(clustering_coefficient(&g), Some(1.0));
    }

    #[test]
    fn path_graph_has_open_caterpillars_only() {
        // u0–v0–u1–v1 has exactly one caterpillar, no butterflies.
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]).unwrap();
        assert_eq!(caterpillars(&g), 1);
        assert_eq!(clustering_coefficient(&g), Some(0.0));
    }

    #[test]
    fn star_has_no_caterpillars() {
        let g = BipartiteGraph::from_edges(3, 1, &[(0, 0), (1, 0), (2, 0)]).unwrap();
        assert_eq!(caterpillars(&g), 0);
        assert_eq!(clustering_coefficient(&g), None);
    }

    #[test]
    fn distribution_on_transitive_graph_is_flat() {
        let g = BipartiteGraph::complete(3, 3);
        let d = butterfly_distribution(&g, bfly_graph::Side::V1);
        assert_eq!(d.participating, 3);
        assert_eq!(d.max, 6);
        assert_eq!(d.median, 6);
        assert!((d.mean - 6.0).abs() < 1e-12);
        assert!(d.gini.abs() < 1e-12, "uniform counts must have Gini 0");
    }

    #[test]
    fn distribution_detects_concentration() {
        // One dense block among many isolated vertices: high Gini.
        let mut rng = StdRng::seed_from_u64(90);
        let base = uniform_exact(50, 50, 30, &mut rng);
        let g = with_planted_biclique(&base, &[0, 1, 2], &[0, 1, 2]);
        let d = butterfly_distribution(&g, bfly_graph::Side::V1);
        assert!(d.participating < 25);
        assert!(d.gini > 0.7, "expected concentration, got {d:?}");
        assert_eq!(d.median, 0);
        // Empty graph edge case.
        let e = BipartiteGraph::empty(4, 4);
        let d = butterfly_distribution(&e, bfly_graph::Side::V1);
        assert_eq!(d.gini, 0.0);
        assert_eq!(d.max, 0);
    }

    #[test]
    fn planted_structure_is_significant_under_null_model() {
        // Sparse noise + a dense planted block: rewiring destroys the
        // block, so the observed count should sit far above the null.
        let mut rng = StdRng::seed_from_u64(88);
        let base = uniform_exact(60, 60, 150, &mut rng);
        let g = with_planted_biclique(&base, &[0, 1, 2, 3, 4, 5], &[0, 1, 2, 3, 4, 5]);
        let r = butterfly_null_model(&g, 6, 20, &mut rng);
        assert!(r.observed as f64 > r.null_mean, "{r:?}");
        if let Some(z) = r.z_score {
            assert!(z > 2.0, "expected a strong clustering signal, got {r:?}");
        }
    }

    #[test]
    fn null_model_on_unrewirable_graph_is_degenerate() {
        // K_{3,3} admits no swaps: every null sample equals the observed
        // count and the z-score is undefined.
        let g = BipartiteGraph::complete(3, 3);
        let mut rng = StdRng::seed_from_u64(89);
        let r = butterfly_null_model(&g, 3, 10, &mut rng);
        assert_eq!(r.observed, 9);
        assert_eq!(r.null_mean, 9.0);
        assert_eq!(r.z_score, None);
    }

    #[test]
    fn metrics_bundle_is_consistent() {
        let g = BipartiteGraph::complete(3, 3);
        let m = metrics(&g);
        assert_eq!(m.butterflies, 9);
        assert_eq!(m.wedges_v1_endpoints, 9);
        assert_eq!(m.wedges_v2_endpoints, 9);
        assert_eq!(m.caterpillars, 9 * 4);
        assert_eq!(m.clustering_coefficient, Some(1.0));
    }
}
