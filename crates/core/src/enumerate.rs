//! Butterfly *enumeration* (listing, not just counting).
//!
//! The paper's introduction distinguishes counting from enumeration;
//! several downstream tasks (motif sampling, explanation, visualisation)
//! need the actual vertex tuples. The enumerator walks each V1 pair's
//! common neighbourhood and emits every butterfly exactly once as
//! `(u, w, x, y)` with `u < w ∈ V1` and `x < y ∈ V2`, with an early-exit
//! budget so it stays safe on dense graphs (a K_{n,n} holds Θ(n⁴)
//! butterflies).

use bfly_graph::BipartiteGraph;

/// One butterfly: `u < w` in V1, `x < y` in V2, all four edges present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Butterfly {
    /// Smaller V1 endpoint.
    pub u: u32,
    /// Larger V1 endpoint.
    pub w: u32,
    /// Smaller V2 wedge point.
    pub x: u32,
    /// Larger V2 wedge point.
    pub y: u32,
}

/// Visit every butterfly once; return `false` from the visitor to stop.
/// Returns the number of butterflies visited.
pub fn for_each_butterfly(g: &BipartiteGraph, mut visit: impl FnMut(Butterfly) -> bool) -> u64 {
    let a = g.biadjacency();
    let at = g.biadjacency_t();
    let mut emitted = 0u64;
    let mut common: Vec<u32> = Vec::new();
    // For each u, enumerate partners w > u via two-hop walks, then the
    // common neighbourhood of (u, w) gives the wedge-point pairs.
    for u in 0..g.nv1() {
        let u32v = u as u32;
        // Collect distinct partners w > u (sorted, deduped).
        let mut partners: Vec<u32> = Vec::new();
        for &x in a.row(u) {
            for &w in at.row(x as usize) {
                if w > u32v {
                    partners.push(w);
                }
            }
        }
        partners.sort_unstable();
        partners.dedup();
        for w in partners {
            // Sorted-merge intersection N(u) ∩ N(w).
            common.clear();
            let (mut p, mut q) = (a.row(u), a.row(w as usize));
            while let (Some(&xa), Some(&xb)) = (p.first(), q.first()) {
                match xa.cmp(&xb) {
                    std::cmp::Ordering::Less => p = &p[1..],
                    std::cmp::Ordering::Greater => q = &q[1..],
                    std::cmp::Ordering::Equal => {
                        common.push(xa);
                        p = &p[1..];
                        q = &q[1..];
                    }
                }
            }
            for i in 0..common.len() {
                for j in (i + 1)..common.len() {
                    emitted += 1;
                    if !visit(Butterfly {
                        u: u32v,
                        w,
                        x: common[i],
                        y: common[j],
                    }) {
                        return emitted;
                    }
                }
            }
        }
    }
    emitted
}

/// Collect up to `limit` butterflies.
pub fn enumerate_butterflies(g: &BipartiteGraph, limit: usize) -> Vec<Butterfly> {
    let mut out = Vec::new();
    for_each_butterfly(g, |b| {
        out.push(b);
        out.len() < limit
    });
    out
}

/// Exact count by full enumeration — the most literal possible
/// cross-check for the counting family (test-sized graphs only).
pub fn count_by_enumeration(g: &BipartiteGraph) -> u64 {
    for_each_butterfly(g, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn single_butterfly_is_enumerated_once() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let all = enumerate_butterflies(&g, 10);
        assert_eq!(
            all,
            vec![Butterfly {
                u: 0,
                w: 1,
                x: 0,
                y: 1
            }]
        );
    }

    #[test]
    fn enumeration_count_matches_family() {
        let g = BipartiteGraph::from_edges(
            5,
            5,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (2, 1),
                (2, 2),
                (3, 0),
                (3, 2),
                (4, 3),
                (0, 3),
            ],
        )
        .unwrap();
        assert_eq!(count_by_enumeration(&g), crate::spec::count_brute_force(&g));
    }

    #[test]
    fn every_emitted_tuple_is_a_real_butterfly_and_unique() {
        let g = BipartiteGraph::complete(4, 4);
        let mut seen = HashSet::new();
        let n = for_each_butterfly(&g, |b| {
            assert!(b.u < b.w);
            assert!(b.x < b.y);
            for (p, q) in [(b.u, b.x), (b.u, b.y), (b.w, b.x), (b.w, b.y)] {
                assert!(g.has_edge(p, q));
            }
            assert!(seen.insert(b), "duplicate {b:?}");
            true
        });
        assert_eq!(n, 36); // C(4,2)²
    }

    #[test]
    fn limit_stops_early() {
        let g = BipartiteGraph::complete(5, 5);
        let some = enumerate_butterflies(&g, 7);
        assert_eq!(some.len(), 7);
        let all = enumerate_butterflies(&g, usize::MAX);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn butterfly_free_graph_enumerates_nothing() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 1), (2, 2), (0, 1)]).unwrap();
        assert_eq!(count_by_enumeration(&g), 0);
    }
}
