//! Degree-based (k, l)-core reduction for bipartite graphs.
//!
//! A standard preprocessing step in the butterfly literature: vertices of
//! degree < 2 can never participate in a butterfly, so peeling to the
//! (2, 2)-core shrinks the graph without changing the count. More
//! generally the (k, l)-core is the maximal subgraph where every V1
//! vertex has degree ≥ k and every V2 vertex degree ≥ l.

use crate::bipartite::BipartiteGraph;

/// Result of a core reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreResult {
    /// Surviving V1 vertices.
    pub keep_v1: Vec<bool>,
    /// Surviving V2 vertices.
    pub keep_v2: Vec<bool>,
    /// The core subgraph (dimension-preserving mask).
    pub subgraph: BipartiteGraph,
}

/// Extract the (k, l)-core by iterated removal (worklist algorithm,
/// O(|E|) amortised).
pub fn kl_core(g: &BipartiteGraph, k: usize, l: usize) -> CoreResult {
    let mut deg1: Vec<usize> = (0..g.nv1()).map(|u| g.deg_v1(u)).collect();
    let mut deg2: Vec<usize> = (0..g.nv2()).map(|v| g.deg_v2(v)).collect();
    let mut keep_v1 = vec![true; g.nv1()];
    let mut keep_v2 = vec![true; g.nv2()];
    // Worklist of vertices that have fallen below threshold.
    let mut stack: Vec<(bool, u32)> = Vec::new();
    for u in 0..g.nv1() {
        if deg1[u] < k {
            stack.push((true, u as u32));
        }
    }
    for v in 0..g.nv2() {
        if deg2[v] < l {
            stack.push((false, v as u32));
        }
    }
    while let Some((is_v1, x)) = stack.pop() {
        let xi = x as usize;
        if is_v1 {
            if !keep_v1[xi] {
                continue;
            }
            keep_v1[xi] = false;
            for &v in g.neighbors_v1(xi) {
                let vi = v as usize;
                if keep_v2[vi] {
                    deg2[vi] -= 1;
                    if deg2[vi] < l {
                        stack.push((false, v));
                    }
                }
            }
        } else {
            if !keep_v2[xi] {
                continue;
            }
            keep_v2[xi] = false;
            for &u in g.neighbors_v2(xi) {
                let ui = u as usize;
                if keep_v1[ui] {
                    deg1[ui] -= 1;
                    if deg1[ui] < k {
                        stack.push((true, u));
                    }
                }
            }
        }
    }
    let subgraph = g.masked(&keep_v1, &keep_v2);
    CoreResult {
        keep_v1,
        keep_v2,
        subgraph,
    }
}

/// The butterfly-preserving reduction: the (2, 2)-core. Every butterfly
/// lies entirely inside it, so counting on the reduced graph gives the
/// same total (asserted by the integration tests).
pub fn butterfly_core(g: &BipartiteGraph) -> CoreResult {
    kl_core(g, 2, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_satisfies_degree_bounds() {
        let g = BipartiteGraph::from_edges(
            5,
            5,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 2),
                (3, 3),
                (3, 4),
                (4, 3),
            ],
        )
        .unwrap();
        let r = kl_core(&g, 2, 2);
        for u in 0..5 {
            if r.keep_v1[u] {
                assert!(r.subgraph.deg_v1(u) >= 2, "vertex {u}");
            }
        }
        for v in 0..5 {
            if r.keep_v2[v] {
                assert!(r.subgraph.deg_v2(v) >= 2, "vertex {v}");
            }
        }
        // The butterfly (0,1)x(0,1) survives; the tree parts do not.
        assert!(r.keep_v1[0] && r.keep_v1[1]);
        assert!(!r.keep_v1[2] && !r.keep_v1[3]);
    }

    #[test]
    fn cascading_removal() {
        // A chain where removing the leaf unravels everything at k=l=2.
        let g =
            BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]).unwrap();
        let r = kl_core(&g, 2, 2);
        assert!(r.keep_v1.iter().all(|&b| !b));
        assert_eq!(r.subgraph.nedges(), 0);
    }

    #[test]
    fn one_one_core_drops_isolated_only() {
        let g = BipartiteGraph::from_edges(4, 4, &[(0, 0), (1, 1)]).unwrap();
        let r = kl_core(&g, 1, 1);
        assert_eq!(r.keep_v1, vec![true, true, false, false]);
        assert_eq!(r.subgraph.nedges(), 2);
    }

    #[test]
    fn complete_graph_is_its_own_core() {
        let g = BipartiteGraph::complete(4, 5);
        let r = kl_core(&g, 4, 3);
        assert!(r.keep_v1.iter().all(|&b| b));
        assert!(r.keep_v2.iter().all(|&b| b));
        assert_eq!(r.subgraph, g);
        // One notch higher on V1 empties it (V1 degrees are 5, V2 are 4).
        let r = kl_core(&g, 5, 5);
        assert_eq!(r.subgraph.nedges(), 0);
    }

    #[test]
    fn asymmetric_thresholds() {
        let g = BipartiteGraph::complete(3, 6);
        // V1 degree 6, V2 degree 3.
        let r = kl_core(&g, 6, 3);
        assert_eq!(r.subgraph.nedges(), 18);
        let r = kl_core(&g, 6, 4);
        assert_eq!(r.subgraph.nedges(), 0);
    }
}
