//! Temporal edge streams.
//!
//! KONECT distributes many bipartite datasets with per-edge timestamps
//! (`u v weight timestamp` lines). This module parses those streams and
//! provides snapshot/window extraction, which together with
//! `bfly_core::IncrementalCounter` supports butterfly counting over
//! sliding windows — the streaming setting of the approximate-counting
//! literature the paper builds on.

use crate::bipartite::BipartiteGraph;
use crate::io::IoError;
use std::io::{BufRead, BufReader, Read};

/// One timestamped edge event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalEdge {
    /// V1 endpoint.
    pub u: u32,
    /// V2 endpoint.
    pub v: u32,
    /// Event time (seconds or arbitrary ticks — only ordering matters).
    pub time: i64,
}

/// A time-ordered bipartite edge stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemporalStream {
    nv1: usize,
    nv2: usize,
    /// Events sorted by time (stable for ties).
    events: Vec<TemporalEdge>,
}

impl TemporalStream {
    /// Build from events; vertex-set sizes inferred, events sorted by time.
    pub fn new(mut events: Vec<TemporalEdge>) -> Self {
        let nv1 = events.iter().map(|e| e.u as usize + 1).max().unwrap_or(0);
        let nv2 = events.iter().map(|e| e.v as usize + 1).max().unwrap_or(0);
        events.sort_by_key(|e| e.time);
        Self { nv1, nv2, events }
    }

    /// `|V1|`.
    pub fn nv1(&self) -> usize {
        self.nv1
    }

    /// `|V2|`.
    pub fn nv2(&self) -> usize {
        self.nv2
    }

    /// All events in time order.
    pub fn events(&self) -> &[TemporalEdge] {
        &self.events
    }

    /// Time range `(min, max)` or `None` when empty.
    pub fn time_range(&self) -> Option<(i64, i64)> {
        Some((self.events.first()?.time, self.events.last()?.time))
    }

    /// The graph of all edges with `time <= t` (duplicates collapse).
    pub fn snapshot_at(&self, t: i64) -> BipartiteGraph {
        let cut = self.events.partition_point(|e| e.time <= t);
        let edges: Vec<(u32, u32)> = self.events[..cut].iter().map(|e| (e.u, e.v)).collect();
        BipartiteGraph::from_edges(self.nv1, self.nv2, &edges).expect("stream indices are in range")
    }

    /// The graph of edges with `start < time <= end` (a sliding window).
    pub fn window(&self, start: i64, end: i64) -> BipartiteGraph {
        let lo = self.events.partition_point(|e| e.time <= start);
        let hi = self.events.partition_point(|e| e.time <= end);
        let edges: Vec<(u32, u32)> = self.events[lo..hi].iter().map(|e| (e.u, e.v)).collect();
        BipartiteGraph::from_edges(self.nv1, self.nv2, &edges).expect("stream indices are in range")
    }

    /// Split the stream into `k` equal-width time slices and return the
    /// snapshot boundaries (useful for growth curves).
    pub fn slice_boundaries(&self, k: usize) -> Vec<i64> {
        assert!(k > 0);
        match self.time_range() {
            None => Vec::new(),
            Some((lo, hi)) => (1..=k)
                .map(|i| lo + ((hi - lo) as i128 * i as i128 / k as i128) as i64)
                .collect(),
        }
    }
}

/// Parse a KONECT file with timestamps (`u v [weight [time]]`, 1-based).
/// Events without a timestamp column get time 0.
pub fn read_konect_temporal<R: Read>(reader: R) -> Result<TemporalStream, IoError> {
    let reader = BufReader::new(reader);
    let mut events = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') || t.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = t.split_whitespace().collect();
        if fields.len() < 2 {
            return Err(IoError::Parse {
                line: lineno + 1,
                msg: format!("expected at least two fields, got {t:?}"),
            });
        }
        let parse_id = |s: &str| -> Result<u32, IoError> {
            let id: u32 = s.parse().map_err(|e| IoError::Parse {
                line: lineno + 1,
                msg: format!("bad vertex id {s:?}: {e}"),
            })?;
            if id == 0 {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    msg: "vertex id 0 in a 1-based file".to_string(),
                });
            }
            Ok(id - 1)
        };
        let u = parse_id(fields[0])?;
        let v = parse_id(fields[1])?;
        let time: i64 = match fields.get(3) {
            Some(ts) => ts.parse().map_err(|e| IoError::Parse {
                line: lineno + 1,
                msg: format!("bad timestamp {ts:?}: {e}"),
            })?,
            None => 0,
        };
        events.push(TemporalEdge { u, v, time });
    }
    Ok(TemporalStream::new(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> TemporalStream {
        TemporalStream::new(vec![
            TemporalEdge {
                u: 0,
                v: 0,
                time: 10,
            },
            TemporalEdge {
                u: 0,
                v: 1,
                time: 20,
            },
            TemporalEdge {
                u: 1,
                v: 0,
                time: 30,
            },
            TemporalEdge {
                u: 1,
                v: 1,
                time: 40,
            },
        ])
    }

    #[test]
    fn snapshots_grow_monotonically() {
        let s = stream();
        assert_eq!(s.snapshot_at(5).nedges(), 0);
        assert_eq!(s.snapshot_at(10).nedges(), 1);
        assert_eq!(s.snapshot_at(35).nedges(), 3);
        assert_eq!(s.snapshot_at(100).nedges(), 4);
        assert_eq!(s.time_range(), Some((10, 40)));
    }

    #[test]
    fn windows_are_half_open() {
        let s = stream();
        let w = s.window(10, 30); // strictly after 10, up to 30
        assert_eq!(w.nedges(), 2);
        assert!(w.has_edge(0, 1));
        assert!(w.has_edge(1, 0));
        assert!(!w.has_edge(0, 0));
    }

    #[test]
    fn events_sorted_even_if_input_unordered() {
        let s = TemporalStream::new(vec![
            TemporalEdge {
                u: 0,
                v: 0,
                time: 50,
            },
            TemporalEdge {
                u: 1,
                v: 1,
                time: 5,
            },
        ]);
        assert_eq!(s.events()[0].time, 5);
        assert_eq!(s.nv1(), 2);
        assert_eq!(s.nv2(), 2);
    }

    #[test]
    fn parses_konect_with_timestamps() {
        let file = "% bip\n1 1 1 100\n1 2 1 200\n2 1 1 300\n2 2 1 400\n";
        let s = read_konect_temporal(file.as_bytes()).unwrap();
        assert_eq!(s.events().len(), 4);
        assert_eq!(s.snapshot_at(250).nedges(), 2);
        // Full snapshot is the butterfly.
        let g = s.snapshot_at(1000);
        assert_eq!(g.nedges(), 4);
    }

    #[test]
    fn parses_without_timestamp_column() {
        let file = "1 1\n2 2\n";
        let s = read_konect_temporal(file.as_bytes()).unwrap();
        assert!(s.events().iter().all(|e| e.time == 0));
    }

    #[test]
    fn slice_boundaries_cover_range() {
        let s = stream();
        let b = s.slice_boundaries(3);
        assert_eq!(b.len(), 3);
        assert_eq!(*b.last().unwrap(), 40);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
        assert!(TemporalStream::new(vec![]).slice_boundaries(3).is_empty());
    }

    #[test]
    fn bad_lines_error() {
        assert!(read_konect_temporal("0 1\n".as_bytes()).is_err());
        assert!(read_konect_temporal("1\n".as_bytes()).is_err());
        assert!(read_konect_temporal("1 1 1 notatime\n".as_bytes()).is_err());
    }
}
