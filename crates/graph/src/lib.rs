//! # bfly-graph
//!
//! Bipartite-graph layer of the butterfly-counting workspace: the
//! [`BipartiteGraph`] type (which keeps *both* orientations of the
//! biadjacency matrix, matching the paper's CSC-for-invariants-1–4 /
//! CSR-for-invariants-5–8 storage scheme), KONECT-style I/O, random-graph
//! generators, calibrated stand-ins for the paper's five evaluation
//! datasets, degree orderings, and structural statistics.
//!
//! ```
//! use bfly_graph::BipartiteGraph;
//!
//! let g = BipartiteGraph::from_edges(2, 3, &[(0, 0), (0, 1), (1, 1), (1, 2)])?;
//! assert_eq!(g.nedges(), 4);
//! assert_eq!(g.neighbors_v1(1), &[1, 2]);
//! assert_eq!(g.neighbors_v2(1), &[0, 1]);
//! // Both orientations of the biadjacency are kept coherent:
//! assert_eq!(g.biadjacency().transpose(), *g.biadjacency_t());
//! # Ok::<(), bfly_sparse::SparseError>(())
//! ```

#![warn(missing_docs)]
// Vertex ids index several parallel arrays at once throughout this
// workspace; the indexed loops clippy flags are the clearer form here.
#![allow(clippy::needless_range_loop)]

pub mod bfly_format;
pub mod bipartite;
pub mod compact;
pub mod components;
pub mod cores;
pub mod generators;
pub mod io;
pub mod konect;
pub mod labeled;
pub mod matrix_market;
pub mod ordering;
pub mod projection;
pub mod retry;
pub mod rewire;
pub mod stats;
pub mod temporal;

pub use bfly_format::{
    convert_to_bfly, is_bfly_file, read_bfly, read_bfly_file, write_bfly, write_bfly_file,
    ConvertStats, GraphSegment, RowReader, SegmentedGraph, TextFormat,
};
pub use bipartite::{BipartiteGraph, Side};
pub use compact::{compact, compact_by, CompactedGraph};
pub use components::{component_subgraph, connected_components, Components};
pub use cores::{butterfly_core, kl_core, CoreResult};
pub use konect::{DatasetSpec, StandIn};
pub use labeled::{LabeledGraph, LabeledGraphBuilder};
pub use projection::Projection;
pub use retry::{is_transient_io_error, with_retries, RetryPolicy, RetryStats, RetryingReader};
pub use rewire::double_edge_swaps;
pub use stats::GraphStats;
pub use temporal::{TemporalEdge, TemporalStream};
