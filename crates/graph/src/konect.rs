//! Calibrated stand-ins for the paper's five KONECT datasets (Fig. 9).
//!
//! | Dataset        | \|V1\|  | \|V2\|  | \|E\|   | Ξ_G (paper) |
//! |----------------|---------|---------|---------|-------------|
//! | arXiv cond-mat | 16,726  | 22,015  | 58,595  | 70,549      |
//! | Producers      | 48,833  | 138,844 | 207,268 | 266,983     |
//! | Record Labels  | 168,337 | 18,421  | 233,286 | 1,086,886   |
//! | Occupations    | 127,577 | 101,730 | 250,945 | 24,509,245  |
//! | GitHub         | 56,519  | 120,867 | 440,237 | 50,894,505  |
//!
//! The real files are not redistributable, so each stand-in is a bipartite
//! Chung–Lu graph with the *exact* vertex-set sizes and edge count from the
//! paper, and per-side power-law exponents tuned so the butterfly count
//! lands in the same order of magnitude (recorded in EXPERIMENTS.md). The
//! phenomena the paper's evaluation measures — which vertex set is smaller,
//! edge sparsity, degree skew — are therefore preserved. A `scale`
//! parameter shrinks all three size parameters proportionally for cheap CI
//! runs.

use crate::bipartite::BipartiteGraph;
use crate::generators::chung_lu;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Static description of one evaluation dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// KONECT name as printed in Fig. 9.
    pub name: &'static str,
    /// `|V1|`.
    pub v1: usize,
    /// `|V2|`.
    pub v2: usize,
    /// `|E|`.
    pub edges: usize,
    /// Butterfly count the paper reports (Fig. 9) — for the real dataset,
    /// not the stand-in; used for order-of-magnitude calibration checks.
    pub paper_butterflies: u64,
    /// Power-law exponent for V1 weights in the stand-in.
    pub exponent_v1: f64,
    /// Power-law exponent for V2 weights in the stand-in.
    pub exponent_v2: f64,
}

/// The five evaluation datasets of the paper.
///
/// ```
/// use bfly_graph::StandIn;
///
/// let g = StandIn::ArxivCondMat.generate_scaled(0.01);
/// let spec = StandIn::ArxivCondMat.spec();
/// assert_eq!(g.nv1(), (spec.v1 as f64 * 0.01) as usize);
/// assert_eq!(g.nedges(), (spec.edges as f64 * 0.01) as usize);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StandIn {
    /// arXiv cond-mat authorship.
    ArxivCondMat,
    /// Movie producers.
    Producers,
    /// Record labels.
    RecordLabels,
    /// Occupations.
    Occupations,
    /// GitHub membership.
    GitHub,
}

impl StandIn {
    /// All five datasets in the paper's row order.
    pub const ALL: [StandIn; 5] = [
        StandIn::ArxivCondMat,
        StandIn::Producers,
        StandIn::RecordLabels,
        StandIn::Occupations,
        StandIn::GitHub,
    ];

    /// Shape parameters (from Fig. 9) and calibrated skew exponents.
    pub fn spec(self) -> DatasetSpec {
        match self {
            StandIn::ArxivCondMat => DatasetSpec {
                name: "arXiv cond-mat",
                v1: 16_726,
                v2: 22_015,
                edges: 58_595,
                paper_butterflies: 70_549,
                exponent_v1: 0.67,
                exponent_v2: 0.67,
            },
            StandIn::Producers => DatasetSpec {
                name: "Producers",
                v1: 48_833,
                v2: 138_844,
                edges: 207_268,
                paper_butterflies: 266_983,
                exponent_v1: 0.68,
                exponent_v2: 0.68,
            },
            StandIn::RecordLabels => DatasetSpec {
                name: "Record Labels",
                v1: 168_337,
                v2: 18_421,
                edges: 233_286,
                paper_butterflies: 1_086_886,
                exponent_v1: 0.69,
                exponent_v2: 0.69,
            },
            StandIn::Occupations => DatasetSpec {
                name: "Occupations",
                v1: 127_577,
                v2: 101_730,
                edges: 250_945,
                paper_butterflies: 24_509_245,
                exponent_v1: 0.89,
                exponent_v2: 0.89,
            },
            StandIn::GitHub => DatasetSpec {
                name: "GitHub",
                v1: 56_519,
                v2: 120_867,
                edges: 440_237,
                paper_butterflies: 50_894_505,
                exponent_v1: 0.82,
                exponent_v2: 0.82,
            },
        }
    }

    /// Generate the stand-in at full size with a fixed per-dataset seed.
    pub fn generate(self) -> BipartiteGraph {
        self.generate_scaled(1.0)
    }

    /// Generate at a fraction of the paper's size: vertex counts and edge
    /// count all scale by `scale` (clamped so nothing degenerates to zero).
    pub fn generate_scaled(self, scale: f64) -> BipartiteGraph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let spec = self.spec();
        let m = ((spec.v1 as f64 * scale) as usize).max(4);
        let n = ((spec.v2 as f64 * scale) as usize).max(4);
        let e = ((spec.edges as f64 * scale) as usize).max(4).min(m * n);
        let mut rng = StdRng::seed_from_u64(self.seed());
        chung_lu(m, n, e, spec.exponent_v1, spec.exponent_v2, &mut rng)
    }

    /// Stable per-dataset RNG seed so every run of the harness sees the
    /// same stand-in.
    fn seed(self) -> u64 {
        match self {
            StandIn::ArxivCondMat => 0xA12B_0001,
            StandIn::Producers => 0xA12B_0002,
            StandIn::RecordLabels => 0xA12B_0003,
            StandIn::Occupations => 0xA12B_0004,
            StandIn::GitHub => 0xA12B_0005,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_fig9_shapes() {
        let s = StandIn::ArxivCondMat.spec();
        assert_eq!((s.v1, s.v2, s.edges), (16_726, 22_015, 58_595));
        let s = StandIn::GitHub.spec();
        assert_eq!((s.v1, s.v2, s.edges), (56_519, 120_867, 440_237));
        // The partition-size split that drives the paper's §V finding:
        // Record Labels and Occupations have |V1| > |V2|, the rest inverse.
        for d in StandIn::ALL {
            let s = d.spec();
            match d {
                StandIn::RecordLabels | StandIn::Occupations => assert!(s.v1 > s.v2),
                _ => assert!(s.v1 < s.v2),
            }
        }
    }

    #[test]
    fn scaled_generation_matches_requested_shape() {
        let g = StandIn::ArxivCondMat.generate_scaled(0.02);
        let spec = StandIn::ArxivCondMat.spec();
        assert_eq!(g.nv1(), (spec.v1 as f64 * 0.02) as usize);
        assert_eq!(g.nv2(), (spec.v2 as f64 * 0.02) as usize);
        assert_eq!(g.nedges(), (spec.edges as f64 * 0.02) as usize);
    }

    #[test]
    fn generation_is_deterministic() {
        let g1 = StandIn::Producers.generate_scaled(0.01);
        let g2 = StandIn::Producers.generate_scaled(0.01);
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        let _ = StandIn::GitHub.generate_scaled(0.0);
    }
}
