//! One-mode (unipartite) projections of a bipartite graph.
//!
//! The wedge matrix `B = A·Aᵀ` the paper's derivation revolves around *is*
//! the weighted one-mode projection onto V1: `B_ij` = number of shared V2
//! neighbours. This module exposes that object as a graph-level concept —
//! the projection's edge weights are exactly the wedge multiplicities the
//! butterfly count is built from (`Ξ = Σ_{i<j} C(B_ij, 2)`), connecting
//! the linear-algebra view back to network-science practice
//! (co-authorship graphs, co-purchase graphs, …).

use crate::bipartite::BipartiteGraph;
use crate::bipartite::Side;
use bfly_sparse::ops::spgemm;
use bfly_sparse::CsrMatrix;

/// Weighted projection onto one side: a symmetric matrix whose `(i, j)`
/// entry counts shared neighbours (diagonal = degrees).
#[derive(Debug, Clone)]
pub struct Projection {
    side: Side,
    weights: CsrMatrix<u64>,
}

impl Projection {
    /// Project onto `side` via SpGEMM (`B = A·Aᵀ` or `Aᵀ·A`).
    pub fn build(g: &BipartiteGraph, side: Side) -> Self {
        let a: CsrMatrix<u64> = match side {
            Side::V1 => g.to_csr(),
            Side::V2 => g.biadjacency_t().to_csr(),
        };
        let weights = spgemm(&a, &a.transpose()).expect("A·Aᵀ shapes conform");
        Self { side, weights }
    }

    /// Which side the projection covers.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Number of projected vertices.
    pub fn nvertices(&self) -> usize {
        self.weights.nrows()
    }

    /// Shared-neighbour count between two same-side vertices.
    pub fn weight(&self, i: u32, j: u32) -> u64 {
        self.weights.get(i as usize, j)
    }

    /// Weighted neighbour list of vertex `i` (excluding the diagonal).
    pub fn neighbors(&self, i: u32) -> impl Iterator<Item = (u32, u64)> + '_ {
        let (cols, vals) = self.weights.row(i as usize);
        cols.iter()
            .zip(vals)
            .filter(move |(&j, _)| j != i)
            .map(|(&j, &w)| (j, w))
    }

    /// Number of projected edges (unordered pairs with ≥1 shared
    /// neighbour).
    pub fn nedges(&self) -> usize {
        let mut n = 0usize;
        for i in 0..self.weights.nrows() {
            n += self
                .weights
                .row_indices(i)
                .iter()
                .filter(|&&j| (j as usize) > i)
                .count();
        }
        n
    }

    /// Edges with weight ≥ `threshold`, as `(i, j, weight)` with `i < j` —
    /// thresholding at 2 yields exactly the vertex pairs that form at
    /// least one butterfly.
    pub fn edges_with_min_weight(&self, threshold: u64) -> Vec<(u32, u32, u64)> {
        let mut out = Vec::new();
        for i in 0..self.weights.nrows() {
            let (cols, vals) = self.weights.row(i);
            for (&j, &w) in cols.iter().zip(vals) {
                if (j as usize) > i && w >= threshold {
                    out.push((i as u32, j, w));
                }
            }
        }
        out
    }

    /// The underlying weight matrix (`B` itself).
    pub fn matrix(&self) -> &CsrMatrix<u64> {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfly_sparse::choose2;

    fn sample() -> BipartiteGraph {
        BipartiteGraph::from_edges(3, 4, &[(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn weights_are_shared_neighbour_counts() {
        let p = Projection::build(&sample(), Side::V1);
        assert_eq!(p.weight(0, 1), 2); // share v0, v1
        assert_eq!(p.weight(0, 2), 0);
        assert_eq!(p.weight(0, 0), 2); // diagonal = degree
        assert_eq!(p.nvertices(), 3);
    }

    #[test]
    fn butterfly_count_from_projection() {
        // Ξ = Σ_{i<j} C(B_ij, 2) — recompute through the projection API.
        let g = sample();
        let p = Projection::build(&g, Side::V1);
        let xi: u64 = p
            .edges_with_min_weight(2)
            .iter()
            .map(|&(_, _, w)| choose2(w))
            .sum();
        assert_eq!(xi, 1); // pair (0,1) with 2 shared → 1 butterfly
    }

    #[test]
    fn neighbors_skip_diagonal() {
        let p = Projection::build(&sample(), Side::V1);
        let n0: Vec<(u32, u64)> = p.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 2)]);
    }

    #[test]
    fn v2_projection() {
        let p = Projection::build(&sample(), Side::V2);
        assert_eq!(p.side(), Side::V2);
        assert_eq!(p.weight(0, 1), 2); // v0 and v1 share u0, u1
        assert_eq!(p.weight(0, 3), 0);
        assert!(p.nedges() >= 2);
    }

    #[test]
    fn threshold_filtering() {
        let g = BipartiteGraph::complete(3, 3);
        let p = Projection::build(&g, Side::V1);
        assert_eq!(p.edges_with_min_weight(3).len(), 3); // all pairs share 3
        assert_eq!(p.edges_with_min_weight(4).len(), 0);
    }
}
