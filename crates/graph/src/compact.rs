//! Subgraph compaction: renumber a masked graph onto dense vertex ids.
//!
//! Peeling returns dimension-preserving masked graphs (matching the
//! paper's `A ∘ M` semantics); compaction squeezes out the removed
//! vertices for downstream consumers that want dense ids, keeping the
//! old↔new mappings.

use crate::bipartite::BipartiteGraph;

/// A compacted graph plus the mapping back to the original ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactedGraph {
    /// The renumbered graph with no gaps.
    pub graph: BipartiteGraph,
    /// `old_v1[new_id] = old_id` for the V1 side.
    pub old_v1: Vec<u32>,
    /// `old_v2[new_id] = old_id` for the V2 side.
    pub old_v2: Vec<u32>,
}

impl CompactedGraph {
    /// Map a new V1 id back to the original id.
    pub fn original_v1(&self, new_id: u32) -> u32 {
        self.old_v1[new_id as usize]
    }

    /// Map a new V2 id back to the original id.
    pub fn original_v2(&self, new_id: u32) -> u32 {
        self.old_v2[new_id as usize]
    }
}

/// Drop every vertex with degree zero and renumber densely.
pub fn compact(g: &BipartiteGraph) -> CompactedGraph {
    compact_by(g, |u| g.deg_v1(u) > 0, |v| g.deg_v2(v) > 0)
}

/// Keep exactly the vertices selected by the two predicates (their edges
/// to dropped vertices disappear) and renumber densely.
pub fn compact_by(
    g: &BipartiteGraph,
    keep_v1: impl Fn(usize) -> bool,
    keep_v2: impl Fn(usize) -> bool,
) -> CompactedGraph {
    let mut new_v1 = vec![u32::MAX; g.nv1()];
    let mut old_v1 = Vec::new();
    for u in 0..g.nv1() {
        if keep_v1(u) {
            new_v1[u] = old_v1.len() as u32;
            old_v1.push(u as u32);
        }
    }
    let mut new_v2 = vec![u32::MAX; g.nv2()];
    let mut old_v2 = Vec::new();
    for v in 0..g.nv2() {
        if keep_v2(v) {
            new_v2[v] = old_v2.len() as u32;
            old_v2.push(v as u32);
        }
    }
    let edges: Vec<(u32, u32)> = g
        .edges()
        .filter(|&(u, v)| new_v1[u as usize] != u32::MAX && new_v2[v as usize] != u32::MAX)
        .map(|(u, v)| (new_v1[u as usize], new_v2[v as usize]))
        .collect();
    let graph = BipartiteGraph::from_edges(old_v1.len(), old_v2.len(), &edges)
        .expect("renumbered edges are dense");
    CompactedGraph {
        graph,
        old_v1,
        old_v2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_drops_isolated_vertices() {
        let g = BipartiteGraph::from_edges(5, 5, &[(1, 2), (3, 2), (3, 4)]).unwrap();
        let c = compact(&g);
        assert_eq!(c.graph.nv1(), 2);
        assert_eq!(c.graph.nv2(), 2);
        assert_eq!(c.graph.nedges(), 3);
        assert_eq!(c.original_v1(0), 1);
        assert_eq!(c.original_v1(1), 3);
        assert_eq!(c.original_v2(0), 2);
        assert_eq!(c.original_v2(1), 4);
        // Edge (3,4) old → (1,1) new.
        assert!(c.graph.has_edge(1, 1));
    }

    #[test]
    fn compact_by_predicate() {
        let g = BipartiteGraph::complete(3, 3);
        let c = compact_by(&g, |u| u != 1, |_| true);
        assert_eq!(c.graph.nv1(), 2);
        assert_eq!(c.graph.nedges(), 6);
        assert_eq!(c.original_v1(1), 2);
    }

    #[test]
    fn compacting_a_peeled_mask_preserves_counts() {
        // Butterfly count must be identical before and after compaction —
        // renumbering is an isomorphism.
        let g = BipartiteGraph::from_edges(
            6,
            6,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (4, 4),
                (4, 5),
                (5, 4),
                (5, 5),
            ],
        )
        .unwrap();
        let c = compact(&g);
        assert_eq!(c.graph.nv1(), 4);
        // Two disjoint butterflies survive with renumbered ids.
        assert!(c.graph.has_edge(0, 0));
        assert!(c.graph.has_edge(2, 2));
        assert!(c.graph.has_edge(3, 3));
    }

    #[test]
    fn fully_empty_graph_compacts_to_nothing() {
        let g = BipartiteGraph::empty(4, 4);
        let c = compact(&g);
        assert_eq!(c.graph.nv1(), 0);
        assert_eq!(c.graph.nv2(), 0);
        assert_eq!(c.graph.nedges(), 0);
    }
}
