//! Degree-preserving randomisation (null models).
//!
//! The introduction motivates butterfly counting as a clustering signal:
//! a count is only meaningful against what degree structure alone would
//! produce. Double-edge swaps `(u₁,v₁),(u₂,v₂) → (u₁,v₂),(u₂,v₁)`
//! preserve every vertex degree on both sides while randomising the
//! wiring; enough swaps approximate a uniform sample from the
//! fixed-degree-sequence ensemble. `bfly_core::metrics` builds butterfly
//! z-scores on top.

use crate::bipartite::BipartiteGraph;
use rand::Rng;
use std::collections::HashSet;

/// Apply up to `attempts` random double-edge swaps (a standard burn-in is
/// ~10–100× the edge count). Swaps that would create a duplicate edge are
/// rejected, so the graph stays simple and every degree is preserved
/// exactly. Returns the rewired graph and the number of accepted swaps.
pub fn double_edge_swaps<R: Rng>(
    g: &BipartiteGraph,
    attempts: usize,
    rng: &mut R,
) -> (BipartiteGraph, usize) {
    let mut edges: Vec<(u32, u32)> = g.edges().collect();
    if edges.len() < 2 {
        return (g.clone(), 0);
    }
    let mut present: HashSet<u64> = edges
        .iter()
        .map(|&(u, v)| ((u as u64) << 32) | v as u64)
        .collect();
    let key = |u: u32, v: u32| ((u as u64) << 32) | v as u64;
    let mut accepted = 0usize;
    for _ in 0..attempts {
        let i = rng.random_range(0..edges.len());
        let j = rng.random_range(0..edges.len());
        if i == j {
            continue;
        }
        let (u1, v1) = edges[i];
        let (u2, v2) = edges[j];
        // The swap must produce two *new* simple edges.
        if v1 == v2 || u1 == u2 {
            continue;
        }
        if present.contains(&key(u1, v2)) || present.contains(&key(u2, v1)) {
            continue;
        }
        present.remove(&key(u1, v1));
        present.remove(&key(u2, v2));
        present.insert(key(u1, v2));
        present.insert(key(u2, v1));
        edges[i] = (u1, v2);
        edges[j] = (u2, v1);
        accepted += 1;
    }
    let rewired = BipartiteGraph::from_edges(g.nv1(), g.nv2(), &edges)
        .expect("swapped endpoints stay in range");
    (rewired, accepted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn degrees(g: &BipartiteGraph) -> (Vec<usize>, Vec<usize>) {
        (
            (0..g.nv1()).map(|u| g.deg_v1(u)).collect(),
            (0..g.nv2()).map(|v| g.deg_v2(v)).collect(),
        )
    }

    #[test]
    fn swaps_preserve_degrees_exactly() {
        let mut rng = StdRng::seed_from_u64(71);
        let g = crate::generators::chung_lu(30, 25, 150, 0.7, 0.7, &mut rng);
        let before = degrees(&g);
        let (h, accepted) = double_edge_swaps(&g, 2000, &mut rng);
        assert!(accepted > 0, "no swaps accepted");
        assert_eq!(degrees(&h), before);
        assert_eq!(h.nedges(), g.nedges());
    }

    #[test]
    fn rewiring_changes_the_wiring() {
        let mut rng = StdRng::seed_from_u64(72);
        let g = crate::generators::uniform_exact(40, 40, 200, &mut rng);
        let (h, accepted) = double_edge_swaps(&g, 3000, &mut rng);
        assert!(accepted > 100);
        assert_ne!(h, g, "enough accepted swaps must change the graph");
    }

    #[test]
    fn tiny_graphs_are_safe() {
        let g = BipartiteGraph::from_edges(1, 1, &[(0, 0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(73);
        let (h, accepted) = double_edge_swaps(&g, 100, &mut rng);
        assert_eq!(h, g);
        assert_eq!(accepted, 0);
        let e = BipartiteGraph::empty(3, 3);
        let (h, _) = double_edge_swaps(&e, 10, &mut rng);
        assert_eq!(h, e);
    }

    #[test]
    fn complete_graph_cannot_be_rewired() {
        // Every potential swap would duplicate an existing edge.
        let g = BipartiteGraph::complete(3, 3);
        let mut rng = StdRng::seed_from_u64(74);
        let (h, accepted) = double_edge_swaps(&g, 500, &mut rng);
        assert_eq!(accepted, 0);
        assert_eq!(h, g);
    }
}
