//! MatrixMarket (`.mtx`) I/O for biadjacency matrices.
//!
//! KONECT (and SuiteSparse) distribute bipartite graphs as MatrixMarket
//! coordinate files; supporting the format lets the harness run on real
//! downloads with no conversion step. We read/write the `coordinate`
//! layout with `pattern`, `integer`, or `real` fields — any nonzero entry
//! becomes an edge (the biadjacency is 0/1 by definition).

use crate::bipartite::BipartiteGraph;
use crate::io::IoError;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parse a MatrixMarket coordinate file into a bipartite graph
/// (rows = V1, columns = V2; indices are 1-based per the format).
pub fn read_matrix_market<R: Read>(reader: R) -> Result<BipartiteGraph, IoError> {
    let mut lines = BufReader::new(reader).lines();
    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>.
    // The first line may carry a UTF-8 BOM (Windows editors); CRLF is
    // handled throughout because `\r` is whitespace to the tokenizers.
    let mut first = true;
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let line = if std::mem::take(&mut first) {
                    crate::io::strip_bom(&line).to_string()
                } else {
                    line
                };
                if line.starts_with("%%MatrixMarket") {
                    break line;
                }
                if !line.trim().is_empty() {
                    return Err(IoError::Parse {
                        line: 1,
                        msg: "missing %%MatrixMarket header".to_string(),
                    });
                }
            }
            None => {
                return Err(IoError::Parse {
                    line: 1,
                    msg: "empty file".to_string(),
                })
            }
        }
    };
    let tokens: Vec<&str> = header.split_whitespace().collect();
    if tokens.len() < 4 || tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(IoError::Parse {
            line: 1,
            msg: format!("unsupported header {header:?} (need matrix coordinate)"),
        });
    }
    let field = tokens[3];
    if !matches!(field, "pattern" | "integer" | "real") {
        return Err(IoError::Parse {
            line: 1,
            msg: format!("unsupported field type {field:?}"),
        });
    }

    // Size line: m n nnz (skipping % comments).
    let mut lineno = 1usize;
    let (m, n, nnz) = loop {
        let line = lines.next().ok_or(IoError::Parse {
            line: lineno,
            msg: "missing size line".to_string(),
        })??;
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(IoError::Parse {
                line: lineno,
                msg: format!("bad size line {t:?}"),
            });
        }
        let parse = |s: &str| -> Result<usize, IoError> {
            s.parse().map_err(|e| IoError::Parse {
                line: lineno,
                msg: format!("bad size field {s:?}: {e}"),
            })
        };
        break (parse(parts[0])?, parse(parts[1])?, parse(parts[2])?);
    };

    // `nnz` counts *entry lines*, not edges: zero-valued entries are
    // skipped (they are not edges) but still count against the declared
    // total, so track the two separately.
    let mut entry_lines = 0usize;
    let mut edges = Vec::with_capacity(nnz.min(1 << 20));
    for line in lines {
        let line = line?;
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        entry_lines += 1;
        let mut it = t.split_whitespace();
        let (rs, cs) = match (it.next(), it.next()) {
            (Some(r), Some(c)) => (r, c),
            _ => {
                return Err(IoError::Parse {
                    line: lineno,
                    msg: format!("bad entry line {t:?}"),
                })
            }
        };
        let r: usize = rs.parse().map_err(|e| IoError::Parse {
            line: lineno,
            msg: format!("bad row {rs:?}: {e}"),
        })?;
        let c: usize = cs.parse().map_err(|e| IoError::Parse {
            line: lineno,
            msg: format!("bad col {cs:?}: {e}"),
        })?;
        if r == 0 || c == 0 || r > m || c > n {
            return Err(IoError::Parse {
                line: lineno,
                msg: format!("entry ({r},{c}) outside {m}x{n}"),
            });
        }
        // Value column (if any): zero values are not edges.
        if field != "pattern" {
            if let Some(vs) = it.next() {
                let v: f64 = vs.parse().map_err(|e| IoError::Parse {
                    line: lineno,
                    msg: format!("bad value {vs:?}: {e}"),
                })?;
                if v == 0.0 {
                    continue;
                }
            }
        }
        edges.push(((r - 1) as u32, (c - 1) as u32));
    }
    if entry_lines != nnz {
        return Err(IoError::Parse {
            line: lineno,
            msg: format!("size line declares {nnz} entries but the file has {entry_lines}"),
        });
    }
    BipartiteGraph::from_edges(m, n, &edges).map_err(|e| IoError::Parse {
        line: lineno,
        msg: format!("structural error: {e}"),
    })
}

/// Load a `.mtx` file from disk.
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<BipartiteGraph, IoError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Write the biadjacency as a `pattern` MatrixMarket file.
pub fn write_matrix_market<W: Write>(g: &BipartiteGraph, mut w: W) -> Result<(), IoError> {
    writeln!(w, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(w, "% bipartite biadjacency written by bfly")?;
    writeln!(w, "{} {} {}", g.nv1(), g.nv2(), g.nedges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{} {}", u + 1, v + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_roundtrip() {
        let g = BipartiteGraph::from_edges(3, 4, &[(0, 0), (1, 3), (2, 1), (2, 2)]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let h = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn reads_integer_field_and_skips_zero_values() {
        let file = "%%MatrixMarket matrix coordinate integer general\n\
                    % comment\n\
                    2 2 3\n\
                    1 1 5\n\
                    1 2 0\n\
                    2 2 1\n";
        let g = read_matrix_market(file.as_bytes()).unwrap();
        assert_eq!(g.nedges(), 2);
        assert!(g.has_edge(0, 0));
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 1));
    }

    #[test]
    fn reads_real_field() {
        let file = "%%MatrixMarket matrix coordinate real general\n3 2 2\n1 2 0.5\n3 1 -1.0\n";
        let g = read_matrix_market(file.as_bytes()).unwrap();
        assert_eq!(g.nv1(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn rejects_missing_header() {
        assert!(read_matrix_market("1 1 1\n1 1\n".as_bytes()).is_err());
        assert!(read_matrix_market("".as_bytes()).is_err());
    }

    #[test]
    fn rejects_unsupported_field() {
        let file = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n";
        assert!(read_matrix_market(file.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_entries() {
        let file = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(read_matrix_market(file.as_bytes()).is_err());
        let file = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n";
        assert!(read_matrix_market(file.as_bytes()).is_err());
    }

    #[test]
    fn dimensions_honoured_even_with_trailing_isolated_vertices() {
        let file = "%%MatrixMarket matrix coordinate pattern general\n5 7 1\n1 1\n";
        let g = read_matrix_market(file.as_bytes()).unwrap();
        assert_eq!(g.nv1(), 5);
        assert_eq!(g.nv2(), 7);
        assert_eq!(g.nedges(), 1);
    }
}
