//! Structural statistics of bipartite graphs.
//!
//! These are the quantities the paper's evaluation narrative turns on:
//! partition sizes (§V: "an algorithm should be picked that partitions the
//! smaller of the two vertex sets"), edge sparsity (GitHub vs Producers),
//! and wedge totals (the raw work the counting algorithms perform).

use crate::bipartite::BipartiteGraph;

/// Summary statistics for one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// `|V1|`.
    pub nv1: usize,
    /// `|V2|`.
    pub nv2: usize,
    /// `|E|`.
    pub nedges: usize,
    /// Edge density `|E| / (|V1|·|V2|)`.
    pub density: f64,
    /// Maximum degree on the V1 side.
    pub max_deg_v1: usize,
    /// Maximum degree on the V2 side.
    pub max_deg_v2: usize,
    /// Mean degree on the V1 side.
    pub mean_deg_v1: f64,
    /// Mean degree on the V2 side.
    pub mean_deg_v2: f64,
    /// `Σ_{v∈V2} C(deg v, 2)` — wedges whose wedge point is in V2
    /// (the work shape of invariants 1–4).
    pub wedges_through_v2: u64,
    /// `Σ_{u∈V1} C(deg u, 2)` — wedges whose wedge point is in V1
    /// (the work shape of invariants 5–8).
    pub wedges_through_v1: u64,
}

impl GraphStats {
    /// Compute all statistics in one pass per side.
    pub fn compute(g: &BipartiteGraph) -> Self {
        let (m, n, e) = (g.nv1(), g.nv2(), g.nedges());
        let max_deg_v1 = (0..m).map(|u| g.deg_v1(u)).max().unwrap_or(0);
        let max_deg_v2 = (0..n).map(|v| g.deg_v2(v)).max().unwrap_or(0);
        GraphStats {
            nv1: m,
            nv2: n,
            nedges: e,
            density: if m * n == 0 {
                0.0
            } else {
                e as f64 / (m as f64 * n as f64)
            },
            max_deg_v1,
            max_deg_v2,
            mean_deg_v1: if m == 0 { 0.0 } else { e as f64 / m as f64 },
            mean_deg_v2: if n == 0 { 0.0 } else { e as f64 / n as f64 },
            wedges_through_v2: g.wedges_through_v2(),
            wedges_through_v1: g.wedges_through_v1(),
        }
    }
}

/// Degree histogram of one side: `hist[d]` = number of vertices of degree
/// `d` (used to eyeball the power-law shape of the stand-ins).
pub fn degree_histogram(g: &BipartiteGraph, side: crate::bipartite::Side) -> Vec<usize> {
    use crate::bipartite::Side;
    let (count, deg): (usize, Box<dyn Fn(usize) -> usize>) = match side {
        Side::V1 => (g.nv1(), Box::new(|u| g.deg_v1(u))),
        Side::V2 => (g.nv2(), Box::new(|v| g.deg_v2(v))),
    };
    let max = (0..count).map(&deg).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for i in 0..count {
        hist[deg(i)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::Side;

    #[test]
    fn stats_of_complete_graph() {
        let g = BipartiteGraph::complete(3, 4);
        let s = GraphStats::compute(&g);
        assert_eq!(s.nedges, 12);
        assert!((s.density - 1.0).abs() < 1e-12);
        assert_eq!(s.max_deg_v1, 4);
        assert_eq!(s.max_deg_v2, 3);
        assert!((s.mean_deg_v1 - 4.0).abs() < 1e-12);
        // Each of the 4 V2 vertices has degree 3 → C(3,2)=3 wedges.
        assert_eq!(s.wedges_through_v2, 12);
        assert_eq!(s.wedges_through_v1, 18); // 3 vertices × C(4,2)
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = BipartiteGraph::empty(0, 0);
        let s = GraphStats::compute(&g);
        assert_eq!(s.nedges, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.mean_deg_v1, 0.0);
    }

    #[test]
    fn histogram_sums_to_vertex_count() {
        let g = BipartiteGraph::from_edges(4, 3, &[(0, 0), (0, 1), (1, 0), (3, 2)]).unwrap();
        let h1 = degree_histogram(&g, Side::V1);
        assert_eq!(h1.iter().sum::<usize>(), 4);
        assert_eq!(h1[0], 1); // vertex 2 isolated
        assert_eq!(h1[2], 1); // vertex 0
        let h2 = degree_histogram(&g, Side::V2);
        assert_eq!(h2.iter().sum::<usize>(), 3);
        assert_eq!(h2[2], 1); // v2 vertex 0 has degree 2
    }
}
