//! Random bipartite-graph generators.
//!
//! The paper evaluates on five KONECT datasets we cannot redistribute, so
//! the workspace generates synthetic graphs whose *shape parameters* —
//! partition sizes, edge count, and degree skew — are controllable. Uniform
//! graphs exercise the sparsity findings (§V), Chung–Lu graphs with
//! power-law weights mimic the heavy-tailed KONECT degree distributions,
//! and planted bicliques create the dense regions that k-tip/k-wing peeling
//! is designed to find.

use crate::bipartite::BipartiteGraph;
use rand::Rng;
use std::collections::HashSet;

/// Pack an edge into a set key.
#[inline]
fn key(u: u32, v: u32) -> u64 {
    ((u as u64) << 32) | v as u64
}

/// Uniform random bipartite graph with exactly `num_edges` distinct edges.
///
/// Panics if `num_edges > m·n`.
pub fn uniform_exact<R: Rng>(m: usize, n: usize, num_edges: usize, rng: &mut R) -> BipartiteGraph {
    assert!(
        num_edges <= m * n,
        "cannot place {num_edges} distinct edges in a {m}x{n} bipartite graph"
    );
    // Dense regime: Floyd-style sampling over the m*n cells would be better,
    // but rejection sampling is fine below half density, and the harness
    // never goes above it.
    let mut seen = HashSet::with_capacity(num_edges * 2);
    let mut edges = Vec::with_capacity(num_edges);
    if num_edges * 2 > m * n {
        // Dense fallback: shuffle all cells (small graphs only).
        let mut cells: Vec<(u32, u32)> = (0..m as u32)
            .flat_map(|u| (0..n as u32).map(move |v| (u, v)))
            .collect();
        for i in 0..num_edges {
            let j = rng.random_range(i..cells.len());
            cells.swap(i, j);
        }
        edges.extend_from_slice(&cells[..num_edges]);
    } else {
        while edges.len() < num_edges {
            let u = rng.random_range(0..m as u32);
            let v = rng.random_range(0..n as u32);
            if seen.insert(key(u, v)) {
                edges.push((u, v));
            }
        }
    }
    BipartiteGraph::from_edges(m, n, &edges).expect("generated edges are in range")
}

/// Erdős–Rényi-style `G(m, n, p)`: each of the `m·n` possible edges appears
/// independently with probability `p`. Uses geometric skipping so the cost
/// is proportional to the number of edges produced, not `m·n`.
pub fn gnp<R: Rng>(m: usize, n: usize, p: f64, rng: &mut R) -> BipartiteGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut edges = Vec::new();
    if p > 0.0 {
        let total = (m as u64) * (n as u64);
        if p >= 1.0 {
            return BipartiteGraph::complete(m, n);
        }
        let log1mp = (1.0 - p).ln();
        let mut cell: i64 = -1;
        loop {
            // Skip ahead geometrically to the next present edge.
            let r: f64 = rng.random_range(f64::EPSILON..1.0);
            let skip = (r.ln() / log1mp).floor() as i64 + 1;
            cell += skip;
            if cell as u64 >= total {
                break;
            }
            let u = (cell as u64 / n as u64) as u32;
            let v = (cell as u64 % n as u64) as u32;
            edges.push((u, v));
        }
    }
    BipartiteGraph::from_edges(m, n, &edges).expect("generated edges are in range")
}

/// Power-law weight sequence `w_i ∝ (i + 1)^(−exponent)` of the given
/// length. With `exponent = 0` the sequence is uniform.
pub fn powerlaw_weights(count: usize, exponent: f64) -> Vec<f64> {
    (0..count)
        .map(|i| ((i + 1) as f64).powf(-exponent))
        .collect()
}

/// O(log n) cumulative-sum sampler over non-negative weights.
#[derive(Debug, Clone)]
pub struct WeightedSampler {
    cumulative: Vec<f64>,
}

impl WeightedSampler {
    /// Build from a weight vector. Panics on empty or all-zero weights.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weight vector");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "negative weight");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "all-zero weight vector");
        Self { cumulative }
    }

    /// Draw an index with probability proportional to its weight.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let total = *self.cumulative.last().unwrap();
        let x = rng.random_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).unwrap())
        {
            Ok(i) | Err(i) => (i as u32).min(self.cumulative.len() as u32 - 1),
        }
    }
}

/// Bipartite Chung–Lu graph: `num_edges` distinct edges whose endpoints are
/// drawn with probability proportional to per-side power-law weights
/// (`exponent1` for V1, `exponent2` for V2). Heavier exponents produce
/// heavier-tailed degree distributions and therefore more butterflies at
/// equal edge count — this is the knob the KONECT stand-ins are calibrated
/// with.
pub fn chung_lu<R: Rng>(
    m: usize,
    n: usize,
    num_edges: usize,
    exponent1: f64,
    exponent2: f64,
    rng: &mut R,
) -> BipartiteGraph {
    assert!(num_edges <= m * n, "too many edges requested");
    let s1 = WeightedSampler::new(&powerlaw_weights(m, exponent1));
    let s2 = WeightedSampler::new(&powerlaw_weights(n, exponent2));
    let mut seen = HashSet::with_capacity(num_edges * 2);
    let mut edges = Vec::with_capacity(num_edges);
    // Rejection cap: heavy tails make the last few edges collide often; fall
    // back to uniform fill if the sampler stalls so termination is certain.
    let mut attempts = 0usize;
    let max_attempts = num_edges.saturating_mul(50) + 1000;
    while edges.len() < num_edges && attempts < max_attempts {
        attempts += 1;
        let u = s1.sample(rng);
        let v = s2.sample(rng);
        if seen.insert(key(u, v)) {
            edges.push((u, v));
        }
    }
    while edges.len() < num_edges {
        let u = rng.random_range(0..m as u32);
        let v = rng.random_range(0..n as u32);
        if seen.insert(key(u, v)) {
            edges.push((u, v));
        }
    }
    BipartiteGraph::from_edges(m, n, &edges).expect("generated edges are in range")
}

/// Bipartite preferential attachment: vertices arrive alternately on the
/// two sides, each new vertex attaching `edges_per_vertex` times to the
/// opposite side with probability proportional to `degree + 1`
/// (plus-one smoothing so isolated vertices remain reachable). Produces
/// the rich-get-richer degree skew of real affiliation networks as an
/// alternative to Chung–Lu for stress-testing the counters.
pub fn preferential_attachment<R: Rng>(
    m: usize,
    n: usize,
    edges_per_vertex: usize,
    rng: &mut R,
) -> BipartiteGraph {
    assert!(m > 0 && n > 0, "both sides must be non-empty");
    let mut seen = HashSet::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Repeated-endpoint lists implement proportional-to-degree sampling;
    // each side also keeps every vertex once for the +1 smoothing.
    let mut pool_v1: Vec<u32> = Vec::new();
    let mut pool_v2: Vec<u32> = Vec::new();
    let mut active_v1 = 0u32; // vertices introduced so far
    let mut active_v2 = 0u32;
    let total = m + n;
    for step in 0..total {
        // Alternate sides, proportionally to the target sizes.
        let bring_v1 = (step * m) / total < ((step + 1) * m) / total;
        if bring_v1 {
            let u = active_v1;
            active_v1 += 1;
            pool_v1.push(u);
            if active_v2 == 0 {
                continue;
            }
            for _ in 0..edges_per_vertex {
                let v = pool_v2[rng.random_range(0..pool_v2.len())];
                if seen.insert(key(u, v)) {
                    edges.push((u, v));
                    pool_v1.push(u);
                    pool_v2.push(v);
                }
            }
        } else {
            let v = active_v2;
            active_v2 += 1;
            pool_v2.push(v);
            if active_v1 == 0 {
                continue;
            }
            for _ in 0..edges_per_vertex {
                let u = pool_v1[rng.random_range(0..pool_v1.len())];
                if seen.insert(key(u, v)) {
                    edges.push((u, v));
                    pool_v1.push(u);
                    pool_v2.push(v);
                }
            }
        }
    }
    BipartiteGraph::from_edges(m, n, &edges).expect("generated edges are in range")
}

/// Bipartite configuration model: a simple graph whose degree sequences
/// approximate the two given sequences (`Σ deg1` must equal `Σ deg2`).
///
/// Half-edge stubs from each side are shuffled and matched; duplicate
/// matches are dropped (the usual "erased" configuration model), so very
/// skewed sequences lose a few edges to collisions — the returned graph
/// reports its actual size.
pub fn configuration_model<R: Rng>(
    deg_v1: &[usize],
    deg_v2: &[usize],
    rng: &mut R,
) -> BipartiteGraph {
    let s1: usize = deg_v1.iter().sum();
    let s2: usize = deg_v2.iter().sum();
    assert_eq!(
        s1, s2,
        "degree sequences must have equal sums ({s1} vs {s2})"
    );
    let mut stubs1: Vec<u32> = Vec::with_capacity(s1);
    for (u, &d) in deg_v1.iter().enumerate() {
        stubs1.extend(std::iter::repeat_n(u as u32, d));
    }
    let mut stubs2: Vec<u32> = Vec::with_capacity(s2);
    for (v, &d) in deg_v2.iter().enumerate() {
        stubs2.extend(std::iter::repeat_n(v as u32, d));
    }
    // Fisher–Yates on one side suffices for a uniform matching.
    for i in (1..stubs2.len()).rev() {
        let j = rng.random_range(0..=i);
        stubs2.swap(i, j);
    }
    let edges: Vec<(u32, u32)> = stubs1.into_iter().zip(stubs2).collect();
    BipartiteGraph::from_edges(deg_v1.len(), deg_v2.len(), &edges)
        .expect("stub indices are in range")
}

/// Overlay a complete biclique on the vertex subsets `v1s × v2s` — a planted
/// dense region containing `C(|v1s|,2)·C(|v2s|,2)` butterflies among its own
/// vertices, which peeling should recover.
pub fn with_planted_biclique(g: &BipartiteGraph, v1s: &[u32], v2s: &[u32]) -> BipartiteGraph {
    let mut edges: Vec<(u32, u32)> = g.edges().collect();
    for &u in v1s {
        for &v in v2s {
            edges.push((u, v));
        }
    }
    BipartiteGraph::from_edges(g.nv1(), g.nv2(), &edges).expect("planted edges must be in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_exact_edge_count_and_simplicity() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = uniform_exact(50, 80, 400, &mut rng);
        assert_eq!(g.nedges(), 400);
        assert_eq!(g.nv1(), 50);
        assert_eq!(g.nv2(), 80);
    }

    #[test]
    fn uniform_exact_dense_regime() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = uniform_exact(10, 10, 90, &mut rng);
        assert_eq!(g.nedges(), 90);
    }

    #[test]
    #[should_panic(expected = "distinct edges")]
    fn uniform_exact_rejects_impossible_request() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = uniform_exact(3, 3, 10, &mut rng);
    }

    #[test]
    fn gnp_density_is_plausible() {
        let mut rng = StdRng::seed_from_u64(10);
        let (m, n, p) = (200, 300, 0.05);
        let g = gnp(m, n, p, &mut rng);
        let expected = (m * n) as f64 * p;
        let got = g.nedges() as f64;
        assert!(
            (got - expected).abs() < expected * 0.25,
            "edge count {got} too far from expectation {expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(gnp(10, 10, 0.0, &mut rng).nedges(), 0);
        assert_eq!(gnp(4, 5, 1.0, &mut rng).nedges(), 20);
    }

    #[test]
    fn powerlaw_weights_monotone() {
        let w = powerlaw_weights(5, 1.5);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        let flat = powerlaw_weights(4, 0.0);
        assert!(flat.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn weighted_sampler_prefers_heavy_indices() {
        let mut rng = StdRng::seed_from_u64(12);
        let s = WeightedSampler::new(&[10.0, 1.0]);
        let mut zero = 0;
        for _ in 0..1000 {
            if s.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        assert!(zero > 800, "expected index 0 to dominate, got {zero}/1000");
    }

    #[test]
    fn chung_lu_hits_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = chung_lu(100, 150, 600, 0.8, 0.6, &mut rng);
        assert_eq!(g.nedges(), 600);
        // Skewed weights should concentrate degree on low-index vertices.
        let head: usize = (0..10).map(|u| g.deg_v1(u)).sum();
        let tail: usize = (90..100).map(|u| g.deg_v1(u)).sum();
        assert!(head > tail, "head {head} should out-degree tail {tail}");
    }

    #[test]
    fn planted_biclique_contains_all_block_edges() {
        let mut rng = StdRng::seed_from_u64(14);
        let base = uniform_exact(30, 30, 50, &mut rng);
        let v1s = [1u32, 5, 9];
        let v2s = [2u32, 3, 7, 11];
        let g = with_planted_biclique(&base, &v1s, &v2s);
        for &u in &v1s {
            for &v in &v2s {
                assert!(g.has_edge(u, v));
            }
        }
        assert!(g.nedges() >= 50); // overlaps may collapse
        assert_eq!(g.nv1(), 30);
    }

    #[test]
    fn preferential_attachment_shapes() {
        let mut rng = StdRng::seed_from_u64(18);
        let g = preferential_attachment(200, 200, 3, &mut rng);
        assert_eq!(g.nv1(), 200);
        assert_eq!(g.nv2(), 200);
        assert!(g.nedges() > 400, "too few edges: {}", g.nedges());
        // Rich-get-richer: the max degree should clearly exceed the mean.
        let max_deg = (0..200).map(|v| g.deg_v2(v)).max().unwrap();
        let mean = g.nedges() as f64 / 200.0;
        assert!(
            max_deg as f64 > 2.5 * mean,
            "expected a heavy tail: max {max_deg}, mean {mean:.1}"
        );
    }

    #[test]
    fn preferential_attachment_deterministic_and_simple() {
        let g1 = preferential_attachment(50, 60, 2, &mut StdRng::seed_from_u64(4));
        let g2 = preferential_attachment(50, 60, 2, &mut StdRng::seed_from_u64(4));
        assert_eq!(g1, g2);
        // No duplicate edges by construction (graph type dedups anyway,
        // so the edge count must match the pre-dedup count).
        let edges: Vec<(u32, u32)> = g1.edges().collect();
        let unique: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
        assert_eq!(unique.len(), edges.len());
    }

    #[test]
    fn configuration_model_respects_degree_sums() {
        let mut rng = StdRng::seed_from_u64(15);
        let deg1 = vec![3, 2, 2, 1];
        let deg2 = vec![4, 2, 1, 1];
        let g = configuration_model(&deg1, &deg2, &mut rng);
        assert_eq!(g.nv1(), 4);
        assert_eq!(g.nv2(), 4);
        // Erased model: at most the stub count, and degrees bounded above.
        assert!(g.nedges() <= 8);
        for (u, &d) in deg1.iter().enumerate() {
            assert!(g.deg_v1(u) <= d, "vertex {u} over degree");
        }
        for (v, &d) in deg2.iter().enumerate() {
            assert!(g.deg_v2(v) <= d);
        }
    }

    #[test]
    #[should_panic(expected = "equal sums")]
    fn configuration_model_rejects_unbalanced_sequences() {
        let mut rng = StdRng::seed_from_u64(16);
        let _ = configuration_model(&[2, 2], &[1], &mut rng);
    }

    #[test]
    fn configuration_model_regular_sequences_mostly_survive() {
        // Low-collision regime: nearly all edges should survive erasure.
        let mut rng = StdRng::seed_from_u64(17);
        let deg1 = vec![2; 100];
        let deg2 = vec![2; 100];
        let g = configuration_model(&deg1, &deg2, &mut rng);
        assert!(g.nedges() > 180, "too many collisions: {}", g.nedges());
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let g1 = uniform_exact(20, 20, 60, &mut StdRng::seed_from_u64(42));
        let g2 = uniform_exact(20, 20, 60, &mut StdRng::seed_from_u64(42));
        assert_eq!(g1, g2);
        let c1 = chung_lu(20, 20, 60, 0.7, 0.7, &mut StdRng::seed_from_u64(1));
        let c2 = chung_lu(20, 20, 60, 0.7, 0.7, &mut StdRng::seed_from_u64(1));
        assert_eq!(c1, c2);
    }
}
