//! Compact on-disk graph format (`.bfly`): delta-varint CSR with a
//! checked, versioned header.
//!
//! The format stores both orientations of the biadjacency matrix so a
//! reader can serve either side's neighbour lists without transposing:
//!
//! ```text
//! offset  len            section
//! 0       8              magic  "BFLYCSR\0"
//! 8       4              endianness tag 0x0A0B0C0D (little-endian on disk)
//! 12      2              format version (currently 1)
//! 14      2              flags (must be 0 in version 1)
//! 16      8              |V1|
//! 24      8              |V2|
//! 32      8              |E| (deduplicated)
//! 40      8              FNV-1a 64 checksum of the V1 degree array
//! 48      8              FNV-1a 64 checksum of the V2 degree array
//! 56      6 × 8          absolute section offsets: deg_v1, deg_v2,
//!                        index_v1, index_v2, payload_v1, payload_v2
//! 104     8              total file length (truncation check)
//! 112     |V1| × u32     V1 degree array
//! ...     |V2| × u32     V2 degree array
//! ...     (|V1|+1) × u64 V1 row index: absolute byte offset of each row's
//!                        varint run (monotone; entry 0 = payload_v1 offset)
//! ...     (|V2|+1) × u64 V2 row index
//! ...     bytes          V1 payloads: per row, the first neighbour as a
//!                        LEB128 varint, then successive deltas (≥ 1) of
//!                        the strictly sorted neighbour list
//! ...     bytes          V2 payloads
//! ```
//!
//! All multi-byte integers are little-endian. Every section lives at a
//! fixed offset recorded in the header, so a reader may `mmap` the file
//! and address sections directly; the [`SegmentedGraph`] reader here uses
//! positioned reads (`read_at`) for the same effect without a platform
//! mmap dependency. Degrees and row indexes are O(|V|) and stay resident;
//! payloads are decoded on demand per vertex range.
//!
//! The streaming converter ([`convert_to_bfly`]) goes from a KONECT /
//! edge-list / MatrixMarket text file to `.bfly` without ever holding the
//! edge list in memory: pass A streams edges to a fixed-width spill file
//! while counting degrees, then each side is gathered in vertex-range
//! windows sized to a bounded buffer (classic out-of-core bucketing with
//! sequential I/O only). Duplicate edges collapse during the per-vertex
//! sort, matching [`BipartiteGraph::from_edges`] semantics exactly.

use crate::bipartite::{BipartiteGraph, Side};
use crate::io::IoError;
use crate::retry::{with_retries, RetryPolicy, RetryStats};
use bfly_sparse::Pattern;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Magic bytes at offset 0 of every `.bfly` file.
pub const BFLY_MAGIC: [u8; 8] = *b"BFLYCSR\0";
/// Endianness tag stored little-endian; reads back differently on a
/// byte-order mismatch.
pub const BFLY_ENDIAN_TAG: u32 = 0x0A0B_0C0D;
/// Current format version.
pub const BFLY_VERSION: u16 = 1;
/// Fixed header length in bytes.
pub const BFLY_HEADER_LEN: u64 = 112;

/// Default in-memory edge buffer for the streaming converter (entries,
/// not bytes; one entry is a `u32` neighbour slot). 4M entries ≈ 16 MiB.
pub const CONVERT_BUFFER_EDGES: usize = 1 << 22;

fn format_err(msg: impl Into<String>) -> IoError {
    IoError::Format(msg.into())
}

// ---------------------------------------------------------------------------
// varint codec
// ---------------------------------------------------------------------------

#[inline]
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decode one LEB128 varint from `bytes` starting at `*pos`, advancing
/// `*pos`. Rejects runs past the slice and shift overflow.
#[inline]
fn take_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, IoError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(format_err("varint run past end of row payload"));
        };
        *pos += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(format_err("varint overflows u64"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encode one strictly-sorted neighbour row as delta varints.
fn encode_row(buf: &mut Vec<u8>, row: &[u32]) {
    let mut prev = 0u64;
    for (i, &v) in row.iter().enumerate() {
        let v = u64::from(v);
        if i == 0 {
            put_varint(buf, v);
        } else {
            put_varint(buf, v - prev);
        }
        prev = v;
    }
}

/// Decode one row of `deg` neighbours from `bytes` (which must be exactly
/// the row's varint run). Validates strict monotonicity, column bounds,
/// and that the run is fully consumed.
fn decode_row(bytes: &[u8], deg: usize, ncols: usize, out: &mut Vec<u32>) -> Result<(), IoError> {
    out.clear();
    let mut pos = 0usize;
    let mut prev: u64 = 0;
    for i in 0..deg {
        let raw = take_varint(bytes, &mut pos)?;
        let v = if i == 0 {
            raw
        } else {
            if raw == 0 {
                return Err(format_err(
                    "zero delta in neighbour row (not strictly sorted)",
                ));
            }
            prev.checked_add(raw)
                .ok_or_else(|| format_err("neighbour delta overflows u64"))?
        };
        if v >= ncols as u64 {
            return Err(format_err(format!(
                "neighbour {v} out of bounds for {ncols} columns"
            )));
        }
        out.push(v as u32);
        prev = v;
    }
    if pos != bytes.len() {
        return Err(format_err(format!(
            "row payload has {} trailing bytes after {} neighbours",
            bytes.len() - pos,
            deg
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// header
// ---------------------------------------------------------------------------

/// FNV-1a 64 over the little-endian bytes of a degree array.
fn fnv1a_degrees(degrees: &[u32]) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = BASIS;
    for &d in degrees {
        for b in d.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Parsed `.bfly` header with its derived section offsets.
#[derive(Debug, Clone, Copy)]
struct Header {
    nv1: u64,
    nv2: u64,
    nedges: u64,
    fnv_v1: u64,
    fnv_v2: u64,
    off_deg_v1: u64,
    off_deg_v2: u64,
    off_idx_v1: u64,
    off_idx_v2: u64,
    off_pay_v1: u64,
    off_pay_v2: u64,
    file_len: u64,
}

impl Header {
    /// The fixed section layout implied by the side sizes. Payload
    /// offsets depend on the encoded sizes and are supplied by the caller.
    fn layout(nv1: u64, nv2: u64) -> (u64, u64, u64, u64, u64) {
        let off_deg_v1 = BFLY_HEADER_LEN;
        let off_deg_v2 = off_deg_v1 + 4 * nv1;
        let off_idx_v1 = off_deg_v2 + 4 * nv2;
        let off_idx_v2 = off_idx_v1 + 8 * (nv1 + 1);
        let off_pay_v1 = off_idx_v2 + 8 * (nv2 + 1);
        (off_deg_v1, off_deg_v2, off_idx_v1, off_idx_v2, off_pay_v1)
    }

    fn new(
        nv1: u64,
        nv2: u64,
        nedges: u64,
        fnv_v1: u64,
        fnv_v2: u64,
        pay1: u64,
        pay2: u64,
    ) -> Self {
        let (off_deg_v1, off_deg_v2, off_idx_v1, off_idx_v2, off_pay_v1) = Self::layout(nv1, nv2);
        let off_pay_v2 = off_pay_v1 + pay1;
        Header {
            nv1,
            nv2,
            nedges,
            fnv_v1,
            fnv_v2,
            off_deg_v1,
            off_deg_v2,
            off_idx_v1,
            off_idx_v2,
            off_pay_v1,
            off_pay_v2,
            file_len: off_pay_v2 + pay2,
        }
    }

    fn to_bytes(self) -> [u8; BFLY_HEADER_LEN as usize] {
        let mut b = [0u8; BFLY_HEADER_LEN as usize];
        b[0..8].copy_from_slice(&BFLY_MAGIC);
        b[8..12].copy_from_slice(&BFLY_ENDIAN_TAG.to_le_bytes());
        b[12..14].copy_from_slice(&BFLY_VERSION.to_le_bytes());
        b[14..16].copy_from_slice(&0u16.to_le_bytes());
        for (i, v) in [
            self.nv1,
            self.nv2,
            self.nedges,
            self.fnv_v1,
            self.fnv_v2,
            self.off_deg_v1,
            self.off_deg_v2,
            self.off_idx_v1,
            self.off_idx_v2,
            self.off_pay_v1,
            self.off_pay_v2,
            self.file_len,
        ]
        .into_iter()
        .enumerate()
        {
            b[16 + 8 * i..24 + 8 * i].copy_from_slice(&v.to_le_bytes());
        }
        b
    }

    fn parse(b: &[u8; BFLY_HEADER_LEN as usize]) -> Result<Self, IoError> {
        let u64_at = |off: usize| u64::from_le_bytes(b[off..off + 8].try_into().unwrap());
        if b[0..8] != BFLY_MAGIC {
            return Err(format_err("bad magic (not a .bfly file)"));
        }
        let endian = u32::from_le_bytes(b[8..12].try_into().unwrap());
        if endian != BFLY_ENDIAN_TAG {
            return Err(format_err(format!(
                "endianness tag {endian:#010x} does not match {BFLY_ENDIAN_TAG:#010x}"
            )));
        }
        let version = u16::from_le_bytes(b[12..14].try_into().unwrap());
        if version != BFLY_VERSION {
            return Err(format_err(format!(
                "unsupported format version {version} (reader supports {BFLY_VERSION})"
            )));
        }
        let flags = u16::from_le_bytes(b[14..16].try_into().unwrap());
        if flags != 0 {
            return Err(format_err(format!("unknown flags {flags:#06x}")));
        }
        let h = Header {
            nv1: u64_at(16),
            nv2: u64_at(24),
            nedges: u64_at(32),
            fnv_v1: u64_at(40),
            fnv_v2: u64_at(48),
            off_deg_v1: u64_at(56),
            off_deg_v2: u64_at(64),
            off_idx_v1: u64_at(72),
            off_idx_v2: u64_at(80),
            off_pay_v1: u64_at(88),
            off_pay_v2: u64_at(96),
            file_len: u64_at(104),
        };
        if h.nv1 > u32::MAX as u64 || h.nv2 > u32::MAX as u64 {
            return Err(format_err(format!(
                "side sizes {}x{} exceed u32 vertex indices",
                h.nv1, h.nv2
            )));
        }
        if h.nedges > h.nv1.saturating_mul(h.nv2) {
            return Err(format_err(format!(
                "{} edges exceed the {}x{} biadjacency capacity",
                h.nedges, h.nv1, h.nv2
            )));
        }
        let (d1, d2, i1, i2, p1) = Self::layout(h.nv1, h.nv2);
        if (
            h.off_deg_v1,
            h.off_deg_v2,
            h.off_idx_v1,
            h.off_idx_v2,
            h.off_pay_v1,
        ) != (d1, d2, i1, i2, p1)
        {
            return Err(format_err("section offsets do not match the fixed layout"));
        }
        if h.off_pay_v2 < h.off_pay_v1 || h.file_len < h.off_pay_v2 {
            return Err(format_err("payload offsets are not monotone"));
        }
        Ok(h)
    }
}

// ---------------------------------------------------------------------------
// sequential reader helpers (shared by the Read-based loader and open())
// ---------------------------------------------------------------------------

fn read_degrees<R: Read>(
    r: &mut R,
    n: usize,
    expect_fnv: u64,
    side: &str,
) -> Result<Vec<u32>, IoError> {
    let mut deg = vec![0u32; n];
    let mut chunk = [0u8; 4 * 1024];
    let mut filled = 0usize;
    while filled < n {
        let take = (n - filled).min(chunk.len() / 4);
        r.read_exact(&mut chunk[..4 * take])?;
        for (i, w) in chunk[..4 * take].chunks_exact(4).enumerate() {
            deg[filled + i] = u32::from_le_bytes(w.try_into().unwrap());
        }
        filled += take;
    }
    let got = fnv1a_degrees(&deg);
    if got != expect_fnv {
        return Err(format_err(format!(
            "{side} degree checksum mismatch (file {expect_fnv:#018x}, computed {got:#018x})"
        )));
    }
    Ok(deg)
}

fn read_index<R: Read>(
    r: &mut R,
    n: usize,
    start: u64,
    end: u64,
    side: &str,
) -> Result<Vec<u64>, IoError> {
    let mut idx = vec![0u64; n + 1];
    let mut chunk = [0u8; 8 * 1024];
    let mut filled = 0usize;
    while filled < n + 1 {
        let take = (n + 1 - filled).min(chunk.len() / 8);
        r.read_exact(&mut chunk[..8 * take])?;
        for (i, w) in chunk[..8 * take].chunks_exact(8).enumerate() {
            idx[filled + i] = u64::from_le_bytes(w.try_into().unwrap());
        }
        filled += take;
    }
    if idx[0] != start || idx[n] != end {
        return Err(format_err(format!(
            "{side} row index endpoints [{}, {}] do not match the payload section [{start}, {end}]",
            idx[0], idx[n]
        )));
    }
    if idx.windows(2).any(|w| w[0] > w[1]) {
        return Err(format_err(format!("{side} row index is not monotone")));
    }
    Ok(idx)
}

/// Decode a contiguous run of rows from `payload` (the byte range
/// `idx[lo]..idx[hi]`) into CSR `ptr`/`cols`, validating each row.
#[allow(clippy::too_many_arguments)]
fn decode_rows(
    payload: &[u8],
    idx: &[u64],
    deg: &[u32],
    lo: usize,
    hi: usize,
    ncols: usize,
    ptr: &mut Vec<usize>,
    cols: &mut Vec<u32>,
) -> Result<(), IoError> {
    let base = idx[lo];
    ptr.clear();
    ptr.push(0);
    cols.clear();
    let mut row = Vec::new();
    for u in lo..hi {
        let s = (idx[u] - base) as usize;
        let e = (idx[u + 1] - base) as usize;
        decode_row(&payload[s..e], deg[u] as usize, ncols, &mut row)
            .map_err(|err| format_err(format!("row {u}: {err}")))?;
        cols.extend_from_slice(&row);
        ptr.push(cols.len());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// writer
// ---------------------------------------------------------------------------

fn encode_side(pat: &Pattern) -> (Vec<u8>, Vec<u64>) {
    let n = pat.nrows();
    let mut payload = Vec::new();
    let mut rel = Vec::with_capacity(n + 1);
    rel.push(0u64);
    for r in 0..n {
        encode_row(&mut payload, pat.row(r));
        rel.push(payload.len() as u64);
    }
    (payload, rel)
}

/// Serialize a graph to the `.bfly` format. Returns the byte length.
pub fn write_bfly<W: Write>(g: &BipartiteGraph, w: &mut W) -> Result<u64, IoError> {
    let (pay1, rel1) = encode_side(g.biadjacency());
    let (pay2, rel2) = encode_side(g.biadjacency_t());
    let deg1: Vec<u32> = (0..g.nv1()).map(|u| g.deg_v1(u) as u32).collect();
    let deg2: Vec<u32> = (0..g.nv2()).map(|v| g.deg_v2(v) as u32).collect();
    let header = Header::new(
        g.nv1() as u64,
        g.nv2() as u64,
        g.nedges() as u64,
        fnv1a_degrees(&deg1),
        fnv1a_degrees(&deg2),
        pay1.len() as u64,
        pay2.len() as u64,
    );
    w.write_all(&header.to_bytes())?;
    for &d in &deg1 {
        w.write_all(&d.to_le_bytes())?;
    }
    for &d in &deg2 {
        w.write_all(&d.to_le_bytes())?;
    }
    for &o in &rel1 {
        w.write_all(&(header.off_pay_v1 + o).to_le_bytes())?;
    }
    for &o in &rel2 {
        w.write_all(&(header.off_pay_v2 + o).to_le_bytes())?;
    }
    w.write_all(&pay1)?;
    w.write_all(&pay2)?;
    Ok(header.file_len)
}

/// Serialize a graph to a `.bfly` file on disk. Returns the byte length.
///
/// Crash-safe: bytes go to `<path>.tmp`, are fsynced, and only then
/// renamed over `path`, so a reader never observes a torn file — either
/// the old content or the complete new one.
pub fn write_bfly_file(g: &BipartiteGraph, path: impl AsRef<Path>) -> Result<u64, IoError> {
    let path = path.as_ref();
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    let result = (|| {
        let mut w = BufWriter::new(File::create(&tmp)?);
        let n = write_bfly(g, &mut w)?;
        w.flush()?;
        let f = w.into_inner().map_err(|e| IoError::from(e.into_error()))?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        Ok(n)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------------
// sequential full loader (any `Read` source — fault-injection testable)
// ---------------------------------------------------------------------------

/// Load a full graph from any sequential `.bfly` byte stream.
///
/// Every corruption mode is a typed [`IoError`], never a panic: a short
/// stream is [`IoError::Io`] (unexpected EOF), and header, checksum,
/// index, or varint violations are [`IoError::Format`]. Both payload
/// sides are decoded and cross-checked (the V2 side must equal the V1
/// transpose), so a payload flip cannot smuggle in an inconsistent graph.
pub fn read_bfly<R: Read>(mut r: R) -> Result<BipartiteGraph, IoError> {
    let mut hbuf = [0u8; BFLY_HEADER_LEN as usize];
    r.read_exact(&mut hbuf)?;
    let h = Header::parse(&hbuf)?;
    let (nv1, nv2) = (h.nv1 as usize, h.nv2 as usize);
    let deg1 = read_degrees(&mut r, nv1, h.fnv_v1, "v1")?;
    let deg2 = read_degrees(&mut r, nv2, h.fnv_v2, "v2")?;
    let sum1: u64 = deg1.iter().map(|&d| u64::from(d)).sum();
    let sum2: u64 = deg2.iter().map(|&d| u64::from(d)).sum();
    if sum1 != h.nedges || sum2 != h.nedges {
        return Err(format_err(format!(
            "degree sums {sum1}/{sum2} do not match the declared {} edges",
            h.nedges
        )));
    }
    let idx1 = read_index(&mut r, nv1, h.off_pay_v1, h.off_pay_v2, "v1")?;
    let idx2 = read_index(&mut r, nv2, h.off_pay_v2, h.file_len, "v2")?;
    let mut pay1 = vec![0u8; (h.off_pay_v2 - h.off_pay_v1) as usize];
    r.read_exact(&mut pay1)?;
    let mut pay2 = vec![0u8; (h.file_len - h.off_pay_v2) as usize];
    r.read_exact(&mut pay2)?;

    let (mut ptr1, mut cols1) = (Vec::new(), Vec::new());
    decode_rows(&pay1, &idx1, &deg1, 0, nv1, nv2, &mut ptr1, &mut cols1)?;
    let a = Pattern::from_raw_parts(nv1, nv2, ptr1, cols1)
        .map_err(|e| format_err(format!("v1 payload is not a valid CSR: {e}")))?;
    let (mut ptr2, mut cols2) = (Vec::new(), Vec::new());
    decode_rows(&pay2, &idx2, &deg2, 0, nv2, nv1, &mut ptr2, &mut cols2)?;
    let at = Pattern::from_raw_parts(nv2, nv1, ptr2, cols2)
        .map_err(|e| format_err(format!("v2 payload is not a valid CSR: {e}")))?;
    if at != a.transpose() {
        return Err(format_err(
            "v2 payload is not the transpose of the v1 payload",
        ));
    }
    Ok(BipartiteGraph::from_biadjacency(a))
}

/// Load a full graph from a `.bfly` file.
pub fn read_bfly_file(path: impl AsRef<Path>) -> Result<BipartiteGraph, IoError> {
    read_bfly(BufReader::new(File::open(path)?))
}

/// Cheap sniff: does `path` start with the `.bfly` magic bytes?
pub fn is_bfly_file(path: impl AsRef<Path>) -> bool {
    let Ok(mut f) = File::open(path) else {
        return false;
    };
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic).is_ok() && magic == BFLY_MAGIC
}

// ---------------------------------------------------------------------------
// SegmentedGraph: O(|V|)-resident reader with on-demand payload decode
// ---------------------------------------------------------------------------

/// A `.bfly` file opened for vertex-range access.
///
/// Keeps the degree arrays and row indexes resident (O(|V|)) and decodes
/// neighbour payloads on demand via positioned reads, so the edge data
/// never has to fit in memory. Mirrors the [`BipartiteGraph`] metadata
/// API (`nv1`/`nv2`/`nedges`/`deg_v1`/`deg_v2`); adjacency comes from
/// [`SegmentedGraph::segment`] (a materialized vertex range) or
/// [`SegmentedGraph::row_reader`] (single rows with a reusable buffer).
#[derive(Debug)]
pub struct SegmentedGraph {
    file: File,
    path: PathBuf,
    nedges: u64,
    deg_v1: Vec<u32>,
    deg_v2: Vec<u32>,
    idx_v1: Vec<u64>,
    idx_v2: Vec<u64>,
    retry: RetryPolicy,
    retry_stats: Arc<RetryStats>,
    reads: AtomicU64,
    faults: FaultPlan,
}

/// Deterministic fault schedule for positioned reads, armed from the
/// `BFLY_FAULT_READ_*` environment at [`SegmentedGraph::open`] time.
/// Inert (two branch checks per read) when no variable is set.
#[derive(Debug, Default)]
struct FaultPlan {
    /// `BFLY_FAULT_READ_ERROR_AT=N`: the Nth positioned read (1-based)
    /// fails hard with a permanent (non-retryable) error.
    error_at_read: Option<u64>,
    /// `BFLY_FAULT_READ_TRANSIENT=N`: the first N read attempts fail
    /// with `Interrupted`, then reads succeed — exercises the retry
    /// path end to end in a real binary.
    transient: AtomicU64,
}

impl FaultPlan {
    fn from_env() -> Self {
        let env_u64 = |name: &str| -> Option<u64> {
            std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
        };
        FaultPlan {
            error_at_read: env_u64("BFLY_FAULT_READ_ERROR_AT"),
            transient: AtomicU64::new(env_u64("BFLY_FAULT_READ_TRANSIENT").unwrap_or(0)),
        }
    }

    /// Raise the scheduled fault for read number `seq`, if any.
    fn check(&self, seq: u64) -> std::io::Result<()> {
        if self.error_at_read == Some(seq) {
            return Err(std::io::Error::other(format!(
                "injected hard fault at positioned read {seq} (BFLY_FAULT_READ_ERROR_AT)"
            )));
        }
        loop {
            let left = self.transient.load(Ordering::Relaxed);
            if left == 0 {
                return Ok(());
            }
            if self
                .transient
                .compare_exchange(left, left - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "injected transient fault (BFLY_FAULT_READ_TRANSIENT)",
                ));
            }
        }
    }
}

impl SegmentedGraph {
    /// Open and validate a `.bfly` file, loading only the O(|V|) degree
    /// and index sections.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, IoError> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let actual_len = file.metadata()?.len();
        let mut r = BufReader::new(&file);
        let mut hbuf = [0u8; BFLY_HEADER_LEN as usize];
        r.read_exact(&mut hbuf)?;
        let h = Header::parse(&hbuf)?;
        if h.file_len != actual_len {
            return Err(format_err(format!(
                "file is {actual_len} bytes but the header declares {} (truncated or padded)",
                h.file_len
            )));
        }
        let (nv1, nv2) = (h.nv1 as usize, h.nv2 as usize);
        let deg_v1 = read_degrees(&mut r, nv1, h.fnv_v1, "v1")?;
        let deg_v2 = read_degrees(&mut r, nv2, h.fnv_v2, "v2")?;
        let sum1: u64 = deg_v1.iter().map(|&d| u64::from(d)).sum();
        let sum2: u64 = deg_v2.iter().map(|&d| u64::from(d)).sum();
        if sum1 != h.nedges || sum2 != h.nedges {
            return Err(format_err(format!(
                "degree sums {sum1}/{sum2} do not match the declared {} edges",
                h.nedges
            )));
        }
        let idx_v1 = read_index(&mut r, nv1, h.off_pay_v1, h.off_pay_v2, "v1")?;
        let idx_v2 = read_index(&mut r, nv2, h.off_pay_v2, h.file_len, "v2")?;
        drop(r);
        Ok(SegmentedGraph {
            file,
            path,
            nedges: h.nedges,
            deg_v1,
            deg_v2,
            idx_v1,
            idx_v2,
            retry: RetryPolicy::default(),
            retry_stats: Arc::new(RetryStats::new()),
            reads: AtomicU64::new(0),
            faults: FaultPlan::from_env(),
        })
    }

    /// Replace the retry policy applied to positioned payload reads
    /// (default: [`RetryPolicy::default`]). `RetryPolicy::none()`
    /// restores fail-on-first-error behaviour.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Snapshot of `(retried attempts, give-ups)` accumulated by
    /// positioned reads since open. The engine raises the `io_retries` /
    /// `io_giveups` telemetry counters from before/after deltas of this.
    pub fn retry_stats(&self) -> (u64, u64) {
        (self.retry_stats.retries(), self.retry_stats.giveups())
    }

    /// Path this graph was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `|V1|`.
    #[inline]
    pub fn nv1(&self) -> usize {
        self.deg_v1.len()
    }

    /// `|V2|`.
    #[inline]
    pub fn nv2(&self) -> usize {
        self.deg_v2.len()
    }

    /// `|E|` (deduplicated).
    #[inline]
    pub fn nedges(&self) -> u64 {
        self.nedges
    }

    /// Degree of `u ∈ V1`.
    #[inline]
    pub fn deg_v1(&self, u: usize) -> usize {
        self.deg_v1[u] as usize
    }

    /// Degree of `v ∈ V2`.
    #[inline]
    pub fn deg_v2(&self, v: usize) -> usize {
        self.deg_v2[v] as usize
    }

    /// The full degree array of one side.
    #[inline]
    pub fn degrees(&self, side: Side) -> &[u32] {
        match side {
            Side::V1 => &self.deg_v1,
            Side::V2 => &self.deg_v2,
        }
    }

    /// FNV-1a 64 checksum of one side's degree array — the exact value
    /// the `.bfly` header stores for that side. Checkpoint fingerprints
    /// reuse it to tie a resumable run to this specific graph.
    pub fn degree_checksum(&self, side: Side) -> u64 {
        fnv1a_degrees(self.degrees(side))
    }

    /// Number of vertices on `side`.
    #[inline]
    pub fn side_len(&self, side: Side) -> usize {
        self.degrees(side).len()
    }

    /// Encoded payload bytes for rows `lo..hi` of `side` — what a
    /// [`SegmentedGraph::segment`] call would read from disk.
    pub fn payload_bytes(&self, side: Side, lo: usize, hi: usize) -> u64 {
        let idx = self.index(side);
        idx[hi] - idx[lo]
    }

    /// Estimated heap size of the fully materialized [`BipartiteGraph`]
    /// (both CSR orientations): what an in-memory plan must keep resident.
    pub fn resident_bytes(&self) -> u64 {
        let verts = (self.nv1() + self.nv2() + 2) as u64;
        2 * (4 * self.nedges + 8 * verts)
    }

    #[inline]
    fn index(&self, side: Side) -> &[u64] {
        match side {
            Side::V1 => &self.idx_v1,
            Side::V2 => &self.idx_v2,
        }
    }

    /// Positioned read with fault injection and bounded transient-error
    /// retries. Every payload access (`segment`, `row_reader`,
    /// `for_each_row`, `load`) funnels through here, so the retry policy
    /// and the `BFLY_FAULT_READ_*` chaos hooks cover them all.
    fn read_at(&self, off: u64, buf: &mut [u8]) -> Result<(), IoError> {
        let seq = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        with_retries(&self.retry, &self.retry_stats, || {
            self.faults.check(seq)?;
            self.raw_read_at(off, buf)
        })
        .map_err(IoError::from)
    }

    fn raw_read_at(&self, off: u64, buf: &mut [u8]) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, off)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Seek, SeekFrom};
            let mut f = &self.file;
            f.seek(SeekFrom::Start(off))?;
            f.read_exact(buf)?;
        }
        Ok(())
    }

    /// Materialize the vertex range `lo..hi` of `side` as a CSR segment
    /// with one positioned read.
    pub fn segment(&self, side: Side, lo: usize, hi: usize) -> Result<GraphSegment, IoError> {
        let n = self.side_len(side);
        assert!(lo <= hi && hi <= n, "segment {lo}..{hi} out of 0..{n}");
        let idx = self.index(side);
        let deg = self.degrees(side);
        let mut payload = vec![0u8; (idx[hi] - idx[lo]) as usize];
        self.read_at(idx[lo], &mut payload)?;
        let (ncols, nv1, nv2) = match side {
            Side::V1 => (self.nv2(), self.nv1(), self.nv2()),
            Side::V2 => (self.nv1(), self.nv1(), self.nv2()),
        };
        // Exact reservations: the degree array prices the decode up
        // front, so `cols` never reallocates — growth-doubling transients
        // would otherwise spike measured memory ~1.5× the segment size,
        // which matters under tight out-of-core byte budgets.
        let nnz: usize = deg[lo..hi].iter().map(|&d| d as usize).sum();
        let (mut ptr, mut cols) = (Vec::with_capacity(hi - lo + 1), Vec::with_capacity(nnz));
        decode_rows(&payload, idx, deg, lo, hi, ncols, &mut ptr, &mut cols)?;
        Ok(GraphSegment {
            side,
            lo,
            hi,
            nv1,
            nv2,
            ptr,
            cols,
        })
    }

    /// A reusable single-row decoder for `side`.
    pub fn row_reader(&self, side: Side) -> RowReader<'_> {
        RowReader {
            graph: self,
            side,
            bytes: Vec::new(),
            vals: Vec::new(),
            last: usize::MAX,
        }
    }

    /// Stream rows `lo..hi` of `side` in order with bounded memory,
    /// reading the payload in windows of at most `window_bytes`.
    pub fn for_each_row(
        &self,
        side: Side,
        lo: usize,
        hi: usize,
        window_bytes: u64,
        mut f: impl FnMut(usize, &[u32]) -> Result<(), IoError>,
    ) -> Result<(), IoError> {
        let idx = self.index(side);
        let deg = self.degrees(side);
        let mut start = lo;
        while start < hi {
            // Grow the window while both the *encoded* payload and the
            // *decoded* column array stay within `window_bytes` — varints
            // can be denser than 4 bytes/edge, so bounding only the
            // encoded side would let the decoded segment balloon past
            // the caller's memory window.
            let mut end = start + 1;
            let mut nnz = deg[start] as u64;
            while end < hi {
                let next = nnz + deg[end] as u64;
                if idx[end + 1] - idx[start] > window_bytes || 4 * next > window_bytes {
                    break;
                }
                nnz = next;
                end += 1;
            }
            let seg = self.segment(side, start, end)?;
            for u in start..end {
                f(u, seg.neighbors(u))?;
            }
            start = end;
        }
        Ok(())
    }

    /// Fully materialize the graph (streaming decode, then the usual
    /// in-memory representation). Cross-checks the two payload sides.
    pub fn load(&self) -> Result<BipartiteGraph, IoError> {
        let window = 4 << 20;
        let build = |side: Side| -> Result<Pattern, IoError> {
            let (nrows, ncols) = match side {
                Side::V1 => (self.nv1(), self.nv2()),
                Side::V2 => (self.nv2(), self.nv1()),
            };
            let mut ptr = Vec::with_capacity(nrows + 1);
            ptr.push(0usize);
            let mut cols = Vec::new();
            self.for_each_row(side, 0, nrows, window, |_, row| {
                cols.extend_from_slice(row);
                ptr.push(cols.len());
                Ok(())
            })?;
            Pattern::from_raw_parts(nrows, ncols, ptr, cols)
                .map_err(|e| format_err(format!("payload is not a valid CSR: {e}")))
        };
        let a = build(Side::V1)?;
        let at = build(Side::V2)?;
        if at != a.transpose() {
            return Err(format_err(
                "v2 payload is not the transpose of the v1 payload",
            ));
        }
        Ok(BipartiteGraph::from_biadjacency(a))
    }
}

/// Decodes single rows of one side with a reusable buffer and a
/// most-recent-row memo (consecutive lookups of the same row are free).
#[derive(Debug)]
pub struct RowReader<'g> {
    graph: &'g SegmentedGraph,
    side: Side,
    bytes: Vec<u8>,
    vals: Vec<u32>,
    last: usize,
}

impl RowReader<'_> {
    /// Decode (or replay) the neighbour row of vertex `u`.
    pub fn row(&mut self, u: usize) -> Result<&[u32], IoError> {
        if u == self.last {
            return Ok(&self.vals);
        }
        let idx = self.graph.index(self.side);
        let deg = self.graph.degrees(self.side)[u] as usize;
        let ncols = match self.side {
            Side::V1 => self.graph.nv2(),
            Side::V2 => self.graph.nv1(),
        };
        let len = (idx[u + 1] - idx[u]) as usize;
        self.bytes.resize(len, 0);
        self.graph.read_at(idx[u], &mut self.bytes)?;
        decode_row(&self.bytes, deg, ncols, &mut self.vals)
            .map_err(|err| format_err(format!("row {u}: {err}")))?;
        self.last = u;
        Ok(&self.vals)
    }
}

/// A materialized vertex range of one side: rows `lo..hi` in CSR form,
/// addressed by *global* vertex ids like the [`BipartiteGraph`] API.
#[derive(Debug, Clone)]
pub struct GraphSegment {
    side: Side,
    lo: usize,
    hi: usize,
    nv1: usize,
    nv2: usize,
    ptr: Vec<usize>,
    cols: Vec<u32>,
}

impl GraphSegment {
    /// Which side of the bipartition this segment covers.
    #[inline]
    pub fn side(&self) -> Side {
        self.side
    }

    /// First (global) vertex id in the segment.
    #[inline]
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// One past the last (global) vertex id in the segment.
    #[inline]
    pub fn hi(&self) -> usize {
        self.hi
    }

    /// Number of vertices in the segment.
    #[inline]
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Is the segment empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Edges incident to the segment.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// `|V1|` of the underlying graph.
    #[inline]
    pub fn nv1(&self) -> usize {
        self.nv1
    }

    /// `|V2|` of the underlying graph.
    #[inline]
    pub fn nv2(&self) -> usize {
        self.nv2
    }

    /// Sorted neighbours of global vertex `u` (must lie in `lo..hi`).
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        let i = u - self.lo;
        &self.cols[self.ptr[i]..self.ptr[i + 1]]
    }

    /// Degree of global vertex `u` (must lie in `lo..hi`).
    #[inline]
    pub fn deg(&self, u: usize) -> usize {
        self.ptr[u - self.lo + 1] - self.ptr[u - self.lo]
    }

    /// Sorted V2 neighbours of `u ∈ V1` — valid on a V1 segment.
    #[inline]
    pub fn neighbors_v1(&self, u: usize) -> &[u32] {
        debug_assert_eq!(self.side, Side::V1);
        self.neighbors(u)
    }

    /// Sorted V1 neighbours of `v ∈ V2` — valid on a V2 segment.
    #[inline]
    pub fn neighbors_v2(&self, v: usize) -> &[u32] {
        debug_assert_eq!(self.side, Side::V2);
        self.neighbors(v)
    }
}

// ---------------------------------------------------------------------------
// streaming converter
// ---------------------------------------------------------------------------

/// Text input dialects the streaming converter accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextFormat {
    /// KONECT `out.*` edge list: 1-based ids, `%` comments, optional
    /// `% nedges nv1 nv2` size header.
    Konect,
    /// Plain 0-based edge list with the same comment conventions.
    EdgeList,
    /// MatrixMarket coordinate file (`pattern`/`integer`/`real`).
    MatrixMarket,
}

/// What the streaming converter did.
#[derive(Debug, Clone, Copy)]
pub struct ConvertStats {
    /// `|V1|` of the converted graph.
    pub nv1: usize,
    /// `|V2|` of the converted graph.
    pub nv2: usize,
    /// Data lines read from the input (pre-dedup).
    pub data_lines: u64,
    /// Edges in the output (post-dedup).
    pub nedges: u64,
    /// Bytes in the output file.
    pub bytes_written: u64,
    /// Spill-file scan passes the bounded-buffer gather needed.
    pub gather_passes: u32,
}

struct StreamInfo {
    data_lines: u64,
    /// Declared `(header_line, nv1, nv2)` when the input carries one.
    declared_dims: Option<(usize, u64, u64)>,
}

/// Stream `(u, v)` edges (0-based) out of a text graph file, enforcing
/// the same header cross-checks as the in-memory readers in
/// [`crate::io`] / [`crate::matrix_market`] — but without accumulating
/// the edge list.
fn stream_edges<R: Read>(
    reader: R,
    format: TextFormat,
    mut emit: impl FnMut(u32, u32) -> Result<(), IoError>,
) -> Result<StreamInfo, IoError> {
    use std::io::BufRead;
    let reader = BufReader::new(reader);
    match format {
        TextFormat::Konect | TextFormat::EdgeList => {
            let one_based = format == TextFormat::Konect;
            let mut header: Option<(usize, u64, u64, u64)> = None;
            let mut data_lines = 0u64;
            for (lineno, line) in reader.lines().enumerate() {
                let line = line?;
                let line = if lineno == 0 {
                    crate::io::strip_bom(&line).to_string()
                } else {
                    line
                };
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                if trimmed.starts_with('%') || trimmed.starts_with('#') {
                    if header.is_none() && data_lines == 0 {
                        let body = trimmed.trim_start_matches(['%', '#']);
                        let nums: Vec<u64> = body
                            .split_whitespace()
                            .map_while(|t| t.parse().ok())
                            .collect();
                        if nums.len() == 3 && body.split_whitespace().count() == 3 {
                            header = Some((lineno + 1, nums[0], nums[1], nums[2]));
                        }
                    }
                    continue;
                }
                data_lines += 1;
                let mut it = trimmed.split_whitespace();
                let (us, vs) = match (it.next(), it.next()) {
                    (Some(u), Some(v)) => (u, v),
                    _ => {
                        return Err(IoError::Parse {
                            line: lineno + 1,
                            msg: format!("expected at least two fields, got {trimmed:?}"),
                        })
                    }
                };
                let parse = |s: &str| -> Result<u32, IoError> {
                    s.parse::<u32>().map_err(|e| IoError::Parse {
                        line: lineno + 1,
                        msg: format!("bad vertex id {s:?}: {e}"),
                    })
                };
                let (mut u, mut v) = (parse(us)?, parse(vs)?);
                if one_based {
                    if u == 0 || v == 0 {
                        return Err(IoError::Parse {
                            line: lineno + 1,
                            msg: "vertex id 0 in a 1-based file".to_string(),
                        });
                    }
                    u -= 1;
                    v -= 1;
                }
                if let Some((hline, _, nv1, nv2)) = header {
                    if u as u64 >= nv1 || v as u64 >= nv2 {
                        return Err(IoError::Parse {
                            line: hline,
                            msg: format!(
                                "edge ({u}, {v}) outside the declared {nv1}x{nv2} vertex sets (0-based)"
                            ),
                        });
                    }
                }
                emit(u, v)?;
            }
            let declared_dims = match header {
                Some((hline, ne, nv1, nv2)) => {
                    if ne != data_lines {
                        return Err(IoError::Parse {
                            line: hline,
                            msg: format!(
                                "header declares {ne} edges but the file has {data_lines} data lines"
                            ),
                        });
                    }
                    if nv1 > u32::MAX as u64 || nv2 > u32::MAX as u64 {
                        return Err(IoError::Parse {
                            line: hline,
                            msg: format!(
                                "declared vertex-set sizes {nv1}x{nv2} exceed u32 indices"
                            ),
                        });
                    }
                    Some((hline, nv1, nv2))
                }
                None => None,
            };
            Ok(StreamInfo {
                data_lines,
                declared_dims,
            })
        }
        TextFormat::MatrixMarket => {
            let mut lines = reader.lines();
            let mut first = true;
            let header = loop {
                match lines.next() {
                    Some(line) => {
                        let line = line?;
                        let line = if std::mem::take(&mut first) {
                            crate::io::strip_bom(&line).to_string()
                        } else {
                            line
                        };
                        if line.starts_with("%%MatrixMarket") {
                            break line;
                        }
                        if !line.trim().is_empty() {
                            return Err(IoError::Parse {
                                line: 1,
                                msg: "missing %%MatrixMarket header".to_string(),
                            });
                        }
                    }
                    None => {
                        return Err(IoError::Parse {
                            line: 1,
                            msg: "empty file".to_string(),
                        })
                    }
                }
            };
            let tokens: Vec<&str> = header.split_whitespace().collect();
            if tokens.len() < 4 || tokens[1] != "matrix" || tokens[2] != "coordinate" {
                return Err(IoError::Parse {
                    line: 1,
                    msg: format!("unsupported header {header:?} (need matrix coordinate)"),
                });
            }
            let field = tokens[3];
            if !matches!(field, "pattern" | "integer" | "real") {
                return Err(IoError::Parse {
                    line: 1,
                    msg: format!("unsupported field type {field:?}"),
                });
            }
            let mut lineno = 1usize;
            let (m, n, nnz) = loop {
                let line = lines.next().ok_or(IoError::Parse {
                    line: lineno,
                    msg: "missing size line".to_string(),
                })??;
                lineno += 1;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                let parts: Vec<&str> = t.split_whitespace().collect();
                if parts.len() != 3 {
                    return Err(IoError::Parse {
                        line: lineno,
                        msg: format!("bad size line {t:?}"),
                    });
                }
                let parse = |s: &str| -> Result<u64, IoError> {
                    s.parse().map_err(|e| IoError::Parse {
                        line: lineno,
                        msg: format!("bad size field {s:?}: {e}"),
                    })
                };
                break (parse(parts[0])?, parse(parts[1])?, parse(parts[2])?);
            };
            if m > u32::MAX as u64 || n > u32::MAX as u64 {
                return Err(IoError::Parse {
                    line: lineno,
                    msg: format!("declared matrix {m}x{n} exceeds u32 indices"),
                });
            }
            let size_line = lineno;
            let mut entry_lines = 0u64;
            for line in lines {
                let line = line?;
                lineno += 1;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                entry_lines += 1;
                let mut it = t.split_whitespace();
                let (rs, cs) = match (it.next(), it.next()) {
                    (Some(r), Some(c)) => (r, c),
                    _ => {
                        return Err(IoError::Parse {
                            line: lineno,
                            msg: format!("bad entry line {t:?}"),
                        })
                    }
                };
                let r: u64 = rs.parse().map_err(|e| IoError::Parse {
                    line: lineno,
                    msg: format!("bad row {rs:?}: {e}"),
                })?;
                let c: u64 = cs.parse().map_err(|e| IoError::Parse {
                    line: lineno,
                    msg: format!("bad column {cs:?}: {e}"),
                })?;
                if r == 0 || c == 0 || r > m || c > n {
                    return Err(IoError::Parse {
                        line: lineno,
                        msg: format!("entry ({r}, {c}) outside the declared {m}x{n} matrix"),
                    });
                }
                if field != "pattern" {
                    let vs = it.next().ok_or(IoError::Parse {
                        line: lineno,
                        msg: "missing value field".to_string(),
                    })?;
                    let v: f64 = vs.parse().map_err(|e| IoError::Parse {
                        line: lineno,
                        msg: format!("bad value {vs:?}: {e}"),
                    })?;
                    if v == 0.0 {
                        continue;
                    }
                }
                emit((r - 1) as u32, (c - 1) as u32)?;
            }
            if entry_lines != nnz {
                return Err(IoError::Parse {
                    line: size_line,
                    msg: format!("size line declares {nnz} entries but the file has {entry_lines}"),
                });
            }
            Ok(StreamInfo {
                data_lines: entry_lines,
                declared_dims: Some((size_line, m, n)),
            })
        }
    }
}

fn bump_degree(deg: &mut Vec<u32>, i: u32) {
    let i = i as usize;
    if i >= deg.len() {
        deg.resize(i + 1, 0);
    }
    deg[i] += 1;
}

/// One bounded-memory gather of a side: scans the spill file in
/// vertex-range windows, sorts/dedups each vertex's neighbours, and
/// appends the delta-varint payload to `pay_path`. Returns the final
/// (deduped) degrees, the relative row offsets, and the pass count.
fn gather_side(
    spill_path: &Path,
    key_is_first: bool,
    predeg: &[u32],
    ncols: usize,
    buffer_entries: usize,
    pay_path: &Path,
) -> Result<(Vec<u32>, Vec<u64>, u32), IoError> {
    let n = predeg.len();
    let mut final_deg = vec![0u32; n];
    let mut rel = Vec::with_capacity(n + 1);
    rel.push(0u64);
    let mut pay = BufWriter::new(File::create(pay_path)?);
    let mut pay_len = 0u64;
    let mut passes = 0u32;
    let mut row_buf = Vec::new();

    let mut w0 = 0usize;
    while w0 < n {
        // Grow the window while its pre-dedup degree sum fits the buffer
        // (always at least one vertex, so a single hub can exceed it).
        let mut w1 = w0 + 1;
        let mut total = predeg[w0] as usize;
        while w1 < n && total + predeg[w1] as usize <= buffer_entries.max(1) {
            total += predeg[w1] as usize;
            w1 += 1;
        }
        passes += 1;

        // Offsets into a flat neighbour buffer for this window.
        let mut offsets = Vec::with_capacity(w1 - w0 + 1);
        offsets.push(0usize);
        for u in w0..w1 {
            offsets.push(offsets.last().unwrap() + predeg[u] as usize);
        }
        let mut slots = vec![0u32; total];
        let mut cursor = offsets[..w1 - w0].to_vec();

        // Sequential scan of the spill, keeping only this window's edges.
        let mut spill = BufReader::with_capacity(1 << 16, File::open(spill_path)?);
        let mut rec = [0u8; 8];
        loop {
            match spill.read_exact(&mut rec) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e.into()),
            }
            let a = u32::from_le_bytes(rec[0..4].try_into().unwrap());
            let b = u32::from_le_bytes(rec[4..8].try_into().unwrap());
            let (key, val) = if key_is_first { (a, b) } else { (b, a) };
            let k = key as usize;
            if (w0..w1).contains(&k) {
                slots[cursor[k - w0]] = val;
                cursor[k - w0] += 1;
            }
        }

        // Sort + dedup each vertex, encode, append.
        for u in w0..w1 {
            let slice = &mut slots[offsets[u - w0]..offsets[u - w0 + 1]];
            slice.sort_unstable();
            row_buf.clear();
            let mut prev_val: Option<u32> = None;
            for &v in slice.iter() {
                if prev_val != Some(v) {
                    debug_assert!((v as usize) < ncols);
                    row_buf.push(v);
                    prev_val = Some(v);
                }
            }
            final_deg[u] = row_buf.len() as u32;
            let mut enc = Vec::with_capacity(5 * row_buf.len());
            encode_row(&mut enc, &row_buf);
            pay.write_all(&enc)?;
            pay_len += enc.len() as u64;
            rel.push(pay_len);
        }
        w0 = w1;
    }
    pay.flush()?;
    Ok((final_deg, rel, passes))
}

/// Convert a text graph file to `.bfly` with the default buffer size.
pub fn convert_to_bfly(
    input: impl AsRef<Path>,
    format: TextFormat,
    out: impl AsRef<Path>,
) -> Result<ConvertStats, IoError> {
    convert_to_bfly_with_buffer(input, format, out, CONVERT_BUFFER_EDGES)
}

/// Convert a text graph file to `.bfly`, never materializing the edge
/// list: peak memory is O(|V| + buffer_entries + max degree), regardless
/// of |E|. Temporary spill/payload files are created next to `out` and
/// removed on success.
pub fn convert_to_bfly_with_buffer(
    input: impl AsRef<Path>,
    format: TextFormat,
    out: impl AsRef<Path>,
    buffer_entries: usize,
) -> Result<ConvertStats, IoError> {
    let input = input.as_ref();
    let out = out.as_ref();
    let spill_path = PathBuf::from(format!("{}.spill.tmp", out.display()));
    let pay1_path = PathBuf::from(format!("{}.pay1.tmp", out.display()));
    let pay2_path = PathBuf::from(format!("{}.pay2.tmp", out.display()));
    let final_tmp_path = PathBuf::from(format!("{}.tmp", out.display()));
    let result = convert_inner(
        input,
        format,
        out,
        buffer_entries,
        &spill_path,
        &pay1_path,
        &pay2_path,
        &final_tmp_path,
    );
    for p in [&spill_path, &pay1_path, &pay2_path, &final_tmp_path] {
        let _ = std::fs::remove_file(p);
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn convert_inner(
    input: &Path,
    format: TextFormat,
    out: &Path,
    buffer_entries: usize,
    spill_path: &Path,
    pay1_path: &Path,
    pay2_path: &Path,
    final_tmp_path: &Path,
) -> Result<ConvertStats, IoError> {
    // Pass A: stream the text input once, spilling fixed-width edge
    // records and counting pre-dedup degrees.
    let mut spill = BufWriter::new(File::create(spill_path)?);
    let mut predeg1: Vec<u32> = Vec::new();
    let mut predeg2: Vec<u32> = Vec::new();
    let info = stream_edges(File::open(input)?, format, |u, v| {
        bump_degree(&mut predeg1, u);
        bump_degree(&mut predeg2, v);
        spill.write_all(&u.to_le_bytes())?;
        spill.write_all(&v.to_le_bytes())?;
        Ok(())
    })?;
    spill.flush()?;
    drop(spill);

    // Declared dims win (they keep trailing isolated vertices, exactly
    // like the in-memory readers); headerless files use max id + 1.
    let (nv1, nv2) = match info.declared_dims {
        Some((_, d1, d2)) => (d1 as usize, d2 as usize),
        None => (predeg1.len(), predeg2.len()),
    };
    predeg1.resize(nv1, 0);
    predeg2.resize(nv2, 0);

    // Bounded-memory gathers, one per side.
    let (deg1, rel1, passes1) =
        gather_side(spill_path, true, &predeg1, nv2, buffer_entries, pay1_path)?;
    let (deg2, rel2, passes2) =
        gather_side(spill_path, false, &predeg2, nv1, buffer_entries, pay2_path)?;
    let nedges: u64 = deg1.iter().map(|&d| u64::from(d)).sum();
    let check: u64 = deg2.iter().map(|&d| u64::from(d)).sum();
    debug_assert_eq!(nedges, check);

    // Assemble the final file.
    let pay1_len = *rel1.last().unwrap();
    let pay2_len = *rel2.last().unwrap();
    let header = Header::new(
        nv1 as u64,
        nv2 as u64,
        nedges,
        fnv1a_degrees(&deg1),
        fnv1a_degrees(&deg2),
        pay1_len,
        pay2_len,
    );
    // Assemble into `<out>.tmp`, fsync, then atomically rename: a crash
    // (or injected fault) mid-assembly can never leave a torn `.bfly`
    // under the destination name — the caller's cleanup removes the temp.
    let mut w = BufWriter::new(File::create(final_tmp_path)?);
    w.write_all(&header.to_bytes())?;
    for &d in &deg1 {
        w.write_all(&d.to_le_bytes())?;
    }
    for &d in &deg2 {
        w.write_all(&d.to_le_bytes())?;
    }
    for &o in &rel1 {
        w.write_all(&(header.off_pay_v1 + o).to_le_bytes())?;
    }
    for &o in &rel2 {
        w.write_all(&(header.off_pay_v2 + o).to_le_bytes())?;
    }
    std::io::copy(&mut File::open(pay1_path)?, &mut w)?;
    std::io::copy(&mut File::open(pay2_path)?, &mut w)?;
    w.flush()?;
    let f = w.into_inner().map_err(|e| IoError::from(e.into_error()))?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(final_tmp_path, out)?;

    Ok(ConvertStats {
        nv1,
        nv2,
        data_lines: info.data_lines,
        nedges,
        bytes_written: header.file_len,
        gather_passes: passes1 + passes2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform_exact;
    use crate::io::{read_edge_list_file, write_edge_list};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bfly-format-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_graph() -> BipartiteGraph {
        // Duplicate edges on purpose: the format stores the dedup form.
        BipartiteGraph::from_edges(
            5,
            4,
            &[
                (0, 0),
                (0, 1),
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (4, 0),
                (4, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn varint_roundtrip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            1 << 20,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(take_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        let mut pos = 0;
        assert!(take_varint(&[0x80, 0x80], &mut pos).is_err());
        let eleven = [0xffu8; 11];
        let mut pos = 0;
        assert!(take_varint(&eleven, &mut pos).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        for g in [
            sample_graph(),
            BipartiteGraph::empty(0, 0),
            BipartiteGraph::empty(3, 0),
            BipartiteGraph::empty(0, 7),
            BipartiteGraph::complete(3, 5),
            uniform_exact(17, 13, 60, &mut StdRng::seed_from_u64(7)),
        ] {
            let mut bytes = Vec::new();
            let len = write_bfly(&g, &mut bytes).unwrap();
            assert_eq!(len as usize, bytes.len());
            let back = read_bfly(&bytes[..]).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn segmented_reader_matches_in_memory() {
        let dir = tmp_dir("segments");
        let g = uniform_exact(23, 19, 120, &mut StdRng::seed_from_u64(11));
        let path = dir.join("g.bfly");
        write_bfly_file(&g, &path).unwrap();
        assert!(is_bfly_file(&path));
        let sg = SegmentedGraph::open(&path).unwrap();
        assert_eq!(
            (sg.nv1(), sg.nv2(), sg.nedges()),
            (23, 19, g.nedges() as u64)
        );
        assert_eq!(sg.load().unwrap(), g);
        // Segments over both sides, a few split points.
        for (lo, hi) in [(0, 23), (0, 5), (5, 23), (11, 11)] {
            let seg = sg.segment(Side::V1, lo, hi).unwrap();
            for u in lo..hi {
                assert_eq!(seg.neighbors_v1(u), g.neighbors_v1(u));
                assert_eq!(seg.deg(u), g.deg_v1(u));
            }
        }
        let seg = sg.segment(Side::V2, 3, 17).unwrap();
        for v in 3..17 {
            assert_eq!(seg.neighbors_v2(v), g.neighbors_v2(v));
        }
        // Single-row reader with memoized repeats.
        let mut rr = sg.row_reader(Side::V2);
        for v in [0usize, 4, 4, 18, 2] {
            assert_eq!(rr.row(v).unwrap(), g.neighbors_v2(v));
        }
        // Streaming row visitor with a tiny window (forces many reads).
        let mut seen = 0usize;
        sg.for_each_row(Side::V1, 0, 23, 4, |u, row| {
            assert_eq!(row, g.neighbors_v1(u));
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 23);
    }

    #[test]
    fn converter_matches_in_memory_reader() {
        let dir = tmp_dir("convert");
        let g = uniform_exact(31, 27, 200, &mut StdRng::seed_from_u64(5));
        let txt = dir.join("edges.tsv");
        let mut f = File::create(&txt).unwrap();
        write_edge_list(&g, &mut f).unwrap();
        drop(f);
        let expect = read_edge_list_file(&txt).unwrap();

        for (tag, buffer) in [("big", 1 << 20), ("tiny", 7)] {
            let out = dir.join(format!("g-{tag}.bfly"));
            let stats =
                convert_to_bfly_with_buffer(&txt, TextFormat::EdgeList, &out, buffer).unwrap();
            assert_eq!(stats.nedges, expect.nedges() as u64);
            let sg = SegmentedGraph::open(&out).unwrap();
            assert_eq!(sg.load().unwrap(), expect);
            if buffer == 7 {
                assert!(
                    stats.gather_passes > 2,
                    "tiny buffer must force multiple passes"
                );
            }
            // No leftover temp files.
            assert!(!dir.join(format!("g-{tag}.bfly.spill.tmp")).exists());
        }
    }

    #[test]
    fn converter_dedups_and_checks_headers() {
        let dir = tmp_dir("convert-dedup");
        let txt = dir.join("dup.tsv");
        std::fs::write(&txt, "% 4 3 3\n0 1\n0 1\n2 2\n1 0\n").unwrap();
        let out = dir.join("dup.bfly");
        let stats = convert_to_bfly(&txt, TextFormat::EdgeList, &out).unwrap();
        assert_eq!((stats.nv1, stats.nv2), (3, 3));
        assert_eq!(stats.data_lines, 4);
        assert_eq!(stats.nedges, 3);

        let bad = dir.join("bad.tsv");
        std::fs::write(&bad, "% 9 3 3\n0 1\n").unwrap();
        assert!(matches!(
            convert_to_bfly(&bad, TextFormat::EdgeList, dir.join("bad.bfly")),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn converter_reads_matrix_market() {
        let dir = tmp_dir("convert-mtx");
        let mtx = dir.join("g.mtx");
        std::fs::write(
            &mtx,
            "%%MatrixMarket matrix coordinate integer general\n3 4 4\n1 1 1\n1 2 1\n3 4 1\n2 2 0\n",
        )
        .unwrap();
        let out = dir.join("g.bfly");
        let stats = convert_to_bfly(&mtx, TextFormat::MatrixMarket, &out).unwrap();
        // The zero-valued entry is not an edge.
        assert_eq!(stats.nedges, 3);
        let g = SegmentedGraph::open(&out).unwrap().load().unwrap();
        assert_eq!((g.nv1(), g.nv2()), (3, 4));
        assert_eq!(g.neighbors_v1(0), &[0, 1]);
        assert_eq!(g.neighbors_v1(2), &[3]);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let g = sample_graph();
        let mut bytes = Vec::new();
        write_bfly(&g, &mut bytes).unwrap();
        for cut in 0..bytes.len() {
            match read_bfly(&bytes[..cut]) {
                Err(IoError::Io(_)) | Err(IoError::Format(_)) => {}
                other => panic!("truncation at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_never_panics_and_checksums_catch_degree_flips() {
        let g = sample_graph();
        let mut bytes = Vec::new();
        write_bfly(&g, &mut bytes).unwrap();
        let h = Header::parse(bytes[..BFLY_HEADER_LEN as usize].try_into().unwrap()).unwrap();
        for i in 0..bytes.len() {
            let mut c = bytes.clone();
            c[i] ^= 0xff;
            // Any outcome but a panic is acceptable in general...
            let parsed = read_bfly(&c[..]);
            // ...but flips in the degree arrays must be caught by FNV.
            let in_degrees = (i as u64) >= h.off_deg_v1 && (i as u64) < h.off_idx_v1;
            if in_degrees {
                assert!(parsed.is_err(), "degree flip at byte {i} went unnoticed");
            }
        }
    }

    #[test]
    fn open_rejects_truncated_file() {
        let dir = tmp_dir("truncated");
        let g = sample_graph();
        let mut bytes = Vec::new();
        write_bfly(&g, &mut bytes).unwrap();
        bytes.pop();
        let path = dir.join("t.bfly");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentedGraph::open(&path),
            Err(IoError::Format(_))
        ));
    }
}
