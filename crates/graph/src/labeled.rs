//! Labeled bipartite graphs: string-keyed vertices over the integer core.
//!
//! Real datasets identify vertices by opaque keys (author names, item
//! ids). [`LabeledGraphBuilder`] interns labels to dense `u32` ids on both
//! sides and produces a [`BipartiteGraph`] plus the two dictionaries, so
//! analysis results can be mapped back to the original identifiers.

use crate::bipartite::BipartiteGraph;
use std::collections::HashMap;

/// Incremental builder that interns vertex labels.
#[derive(Debug, Default)]
pub struct LabeledGraphBuilder {
    v1_ids: HashMap<String, u32>,
    v2_ids: HashMap<String, u32>,
    v1_labels: Vec<String>,
    v2_labels: Vec<String>,
    edges: Vec<(u32, u32)>,
}

/// A graph together with its label dictionaries.
#[derive(Debug, Clone)]
pub struct LabeledGraph {
    /// The integer-indexed graph.
    pub graph: BipartiteGraph,
    /// Label of each V1 vertex, indexed by vertex id.
    pub v1_labels: Vec<String>,
    /// Label of each V2 vertex, indexed by vertex id.
    pub v2_labels: Vec<String>,
}

impl LabeledGraphBuilder {
    /// Fresh empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a V1 label, returning its dense id.
    pub fn v1(&mut self, label: &str) -> u32 {
        intern(&mut self.v1_ids, &mut self.v1_labels, label)
    }

    /// Intern a V2 label, returning its dense id.
    pub fn v2(&mut self, label: &str) -> u32 {
        intern(&mut self.v2_ids, &mut self.v2_labels, label)
    }

    /// Add an edge between two labels (both interned on demand).
    pub fn edge(&mut self, v1_label: &str, v2_label: &str) {
        let u = self.v1(v1_label);
        let v = self.v2(v2_label);
        self.edges.push((u, v));
    }

    /// Number of edges recorded so far (before dedup).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finish: build the graph and hand back the dictionaries.
    pub fn build(self) -> LabeledGraph {
        let graph =
            BipartiteGraph::from_edges(self.v1_labels.len(), self.v2_labels.len(), &self.edges)
                .expect("interned ids are dense and in range");
        LabeledGraph {
            graph,
            v1_labels: self.v1_labels,
            v2_labels: self.v2_labels,
        }
    }
}

fn intern(ids: &mut HashMap<String, u32>, labels: &mut Vec<String>, label: &str) -> u32 {
    if let Some(&id) = ids.get(label) {
        return id;
    }
    let id = labels.len() as u32;
    ids.insert(label.to_string(), id);
    labels.push(label.to_string());
    id
}

impl LabeledGraph {
    /// Look up a V1 vertex id by label.
    pub fn v1_id(&self, label: &str) -> Option<u32> {
        self.v1_labels
            .iter()
            .position(|l| l == label)
            .map(|i| i as u32)
    }

    /// Look up a V2 vertex id by label.
    pub fn v2_id(&self, label: &str) -> Option<u32> {
        self.v2_labels
            .iter()
            .position(|l| l == label)
            .map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dense() {
        let mut b = LabeledGraphBuilder::new();
        assert_eq!(b.v1("alice"), 0);
        assert_eq!(b.v1("bob"), 1);
        assert_eq!(b.v1("alice"), 0);
        assert_eq!(b.v2("paper-x"), 0);
        b.edge("alice", "paper-x");
        b.edge("bob", "paper-x");
        b.edge("alice", "paper-y");
        assert_eq!(b.edge_count(), 3);
        let lg = b.build();
        assert_eq!(lg.graph.nv1(), 2);
        assert_eq!(lg.graph.nv2(), 2);
        assert_eq!(lg.graph.nedges(), 3);
        assert_eq!(lg.v1_labels, vec!["alice", "bob"]);
        assert_eq!(lg.v1_id("bob"), Some(1));
        assert_eq!(lg.v2_id("paper-y"), Some(1));
        assert_eq!(lg.v2_id("nope"), None);
    }

    #[test]
    fn duplicate_labeled_edges_collapse() {
        let mut b = LabeledGraphBuilder::new();
        b.edge("a", "x");
        b.edge("a", "x");
        let lg = b.build();
        assert_eq!(lg.graph.nedges(), 1);
    }

    #[test]
    fn same_label_on_both_sides_is_distinct() {
        // Bipartite sides have independent namespaces.
        let mut b = LabeledGraphBuilder::new();
        b.edge("x", "x");
        let lg = b.build();
        assert_eq!(lg.graph.nv1(), 1);
        assert_eq!(lg.graph.nv2(), 1);
        assert!(lg.graph.has_edge(0, 0));
    }
}
