//! Edge-list I/O, including the KONECT `out.*` format.
//!
//! The paper's datasets come from the KONECT collection [5], whose files
//! look like:
//!
//! ```text
//! % bip unweighted
//! % 58595 16726 22015
//! 1 1
//! 1 2
//! ...
//! ```
//!
//! Comment lines start with `%` (or `#`), data lines are whitespace-
//! separated `u v [weight [timestamp]]` pairs with **1-based** indices.
//! [`read_konect`] parses that; [`read_edge_list`] parses the same shape
//! with 0-based indices and no header. If real KONECT files are available
//! locally they can be fed straight into the same harness that runs the
//! synthetic stand-ins.

use crate::bipartite::BipartiteGraph;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors raised while parsing edge-list files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// A binary `.bfly` file violated its own format contract (bad
    /// magic, checksum mismatch, corrupt varint, inconsistent index).
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
            IoError::Format(msg) => write!(f, "invalid .bfly file: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Strip a UTF-8 byte-order mark (files saved by Windows editors often
/// lead with one; it must not poison the first token).
pub(crate) fn strip_bom(s: &str) -> &str {
    s.strip_prefix('\u{feff}').unwrap_or(s)
}

/// A parsed edge list plus the metadata needed to cross-check it against
/// its own header.
struct ParsedPairs {
    edges: Vec<(u32, u32)>,
    /// First `%`/`#` comment before any data line whose payload is
    /// exactly three integers — KONECT's `% nedges nv1 nv2` size header.
    /// Stored as `(line, nedges, nv1, nv2)`.
    header: Option<(usize, u64, u64, u64)>,
    /// Data lines seen, pre-dedup (duplicate edges collapse later, so
    /// this — not the final edge count — is what the header declares).
    data_lines: usize,
}

fn parse_pairs<R: Read>(reader: R, one_based: bool) -> Result<ParsedPairs, IoError> {
    let reader = BufReader::new(reader);
    let mut edges = Vec::new();
    let mut header: Option<(usize, u64, u64, u64)> = None;
    let mut data_lines = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = if lineno == 0 {
            strip_bom(&line)
        } else {
            line.as_str()
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with('%') || trimmed.starts_with('#') {
            if header.is_none() && data_lines == 0 {
                let nums: Vec<u64> = trimmed
                    .trim_start_matches(['%', '#'])
                    .split_whitespace()
                    .map_while(|t| t.parse().ok())
                    .collect();
                if nums.len() == 3
                    && trimmed
                        .trim_start_matches(['%', '#'])
                        .split_whitespace()
                        .count()
                        == 3
                {
                    header = Some((lineno + 1, nums[0], nums[1], nums[2]));
                }
            }
            continue;
        }
        data_lines += 1;
        let mut it = trimmed.split_whitespace();
        let (us, vs) = match (it.next(), it.next()) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    msg: format!("expected at least two fields, got {trimmed:?}"),
                })
            }
        };
        let parse = |s: &str, lineno: usize| -> Result<u32, IoError> {
            s.parse::<u32>().map_err(|e| IoError::Parse {
                line: lineno + 1,
                msg: format!("bad vertex id {s:?}: {e}"),
            })
        };
        let mut u = parse(us, lineno)?;
        let mut v = parse(vs, lineno)?;
        if one_based {
            if u == 0 || v == 0 {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    msg: "vertex id 0 in a 1-based file".to_string(),
                });
            }
            u -= 1;
            v -= 1;
        }
        edges.push((u, v));
    }
    Ok(ParsedPairs {
        edges,
        header,
        data_lines,
    })
}

fn graph_from_pairs(edges: Vec<(u32, u32)>) -> BipartiteGraph {
    let m = edges
        .iter()
        .map(|&(u, _)| u as usize + 1)
        .max()
        .unwrap_or(0);
    let n = edges
        .iter()
        .map(|&(_, v)| v as usize + 1)
        .max()
        .unwrap_or(0);
    BipartiteGraph::from_edges(m, n, &edges).expect("dimensions derived from the edges")
}

/// Cross-check the parsed edges against the file's own size header (when
/// one was present) and build the graph. A header that contradicts the
/// data — wrong edge count, or a vertex id outside the declared vertex
/// sets — is a pointed [`IoError::Parse`] naming both numbers, not a
/// silently misshapen graph. With a consistent header the *declared*
/// dimensions are used, so trailing isolated vertices survive a
/// write/read roundtrip; headerless files keep the inferred dimensions.
fn graph_checked_against_header(p: ParsedPairs) -> Result<BipartiteGraph, IoError> {
    let Some((line, ne, nv1, nv2)) = p.header else {
        return Ok(graph_from_pairs(p.edges));
    };
    if ne != p.data_lines as u64 {
        return Err(IoError::Parse {
            line,
            msg: format!(
                "header declares {ne} edges but the file has {} data lines",
                p.data_lines
            ),
        });
    }
    if nv1 > u32::MAX as u64 || nv2 > u32::MAX as u64 {
        return Err(IoError::Parse {
            line,
            msg: format!("declared vertex-set sizes {nv1}x{nv2} exceed u32 indices"),
        });
    }
    for &(u, v) in &p.edges {
        if u as u64 >= nv1 || v as u64 >= nv2 {
            return Err(IoError::Parse {
                line,
                msg: format!(
                    "edge ({u}, {v}) outside the declared {nv1}x{nv2} vertex sets (0-based)"
                ),
            });
        }
    }
    BipartiteGraph::from_edges(nv1 as usize, nv2 as usize, &p.edges).map_err(|e| IoError::Parse {
        line,
        msg: format!("structural error: {e}"),
    })
}

/// Parse a KONECT `out.*` bipartite file (1-based indices, `%` comments)
/// from any reader. Tolerates a UTF-8 BOM and CRLF line endings. When the
/// file carries KONECT's `% nedges nv1 nv2` size header it is enforced
/// (edge count and index ranges must agree — see
/// [`graph_checked_against_header`]); otherwise vertex-set sizes are
/// inferred from the maximum indices.
pub fn read_konect<R: Read>(reader: R) -> Result<BipartiteGraph, IoError> {
    graph_checked_against_header(parse_pairs(reader, true)?)
}

/// Parse a 0-based whitespace edge list (comments `%`/`#` allowed, BOM
/// and CRLF tolerated, size header enforced when present).
pub fn read_edge_list<R: Read>(reader: R) -> Result<BipartiteGraph, IoError> {
    graph_checked_against_header(parse_pairs(reader, false)?)
}

/// Load a KONECT file from disk.
pub fn read_konect_file<P: AsRef<Path>>(path: P) -> Result<BipartiteGraph, IoError> {
    read_konect(std::fs::File::open(path)?)
}

/// Load a 0-based edge list from disk.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<BipartiteGraph, IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Write a graph as a 0-based edge list.
pub fn write_edge_list<W: Write>(g: &BipartiteGraph, mut w: W) -> Result<(), IoError> {
    writeln!(w, "% bip unweighted")?;
    writeln!(w, "% {} {} {}", g.nedges(), g.nv1(), g.nv2())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn konect_format_roundtrip_semantics() {
        let file = "% bip unweighted\n% 3 2 2\n1 1\n1 2\n2 2\n";
        let g = read_konect(file.as_bytes()).unwrap();
        assert_eq!(g.nv1(), 2);
        assert_eq!(g.nv2(), 2);
        assert_eq!(g.nedges(), 3);
        assert!(g.has_edge(0, 0));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn zero_based_edge_list() {
        let file = "# comment\n0 0\n0 1\n2 1\n";
        let g = read_edge_list(file.as_bytes()).unwrap();
        assert_eq!(g.nv1(), 3);
        assert_eq!(g.nv2(), 2);
        assert!(g.has_edge(2, 1));
    }

    #[test]
    fn extra_columns_are_ignored() {
        let file = "1 1 1.0 1234567890\n2 1 1.0 1234567891\n";
        let g = read_konect(file.as_bytes()).unwrap();
        assert_eq!(g.nedges(), 2);
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn konect_rejects_zero_ids() {
        let file = "0 1\n";
        assert!(matches!(
            read_konect(file.as_bytes()),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn malformed_lines_error_with_location() {
        let file = "1 1\nnot-a-number 2\n";
        match read_edge_list(file.as_bytes()) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let file = "1\n";
        assert!(read_edge_list(file.as_bytes()).is_err());
    }

    #[test]
    fn write_then_read_roundtrip() {
        let g = BipartiteGraph::from_edges(3, 2, &[(0, 0), (1, 1), (2, 0)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("% nothing here\n".as_bytes()).unwrap();
        assert_eq!(g.nedges(), 0);
        assert_eq!(g.nv1(), 0);
    }
}
