//! The bipartite graph type.
//!
//! A graph `G = (V1, V2, E)` is fully described by its `m×n` biadjacency
//! matrix `A` (paper §II: the full adjacency is `[[0, A], [Aᵀ, 0]]`). We
//! store `A` twice — once row-major (`Pattern` over V1, the CSR view used by
//! invariants 5–8) and once transposed (rows are V2 vertices, i.e. the CSC
//! view of `A` used by invariants 1–4). Wedge expansion needs both
//! directions regardless of which vertex set an algorithm partitions, so the
//! pair is kept coherent by construction.

use bfly_sparse::{CsrMatrix, DenseMatrix, Pattern, Scalar, SparseError};

/// Which side of the bipartition a vertex belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The "left"/row vertex set `V1` (rows of `A`), size `m`.
    V1,
    /// The "right"/column vertex set `V2` (columns of `A`), size `n`.
    V2,
}

impl Side {
    /// The opposite side.
    #[inline]
    pub fn other(self) -> Side {
        match self {
            Side::V1 => Side::V2,
            Side::V2 => Side::V1,
        }
    }
}

/// Simple undirected bipartite graph, stored as both orientations of its
/// biadjacency matrix with sorted neighbour lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    /// `A`: rows are V1 vertices, sorted V2 neighbours.
    a: Pattern,
    /// `Aᵀ`: rows are V2 vertices, sorted V1 neighbours.
    at: Pattern,
}

impl BipartiteGraph {
    /// Build from an edge list `(u ∈ V1, v ∈ V2)`. Duplicate edges collapse
    /// (the graph is simple), out-of-range endpoints error.
    pub fn from_edges(m: usize, n: usize, edges: &[(u32, u32)]) -> Result<Self, SparseError> {
        let a = Pattern::from_edges(m, n, edges)?;
        let at = a.transpose();
        Ok(Self { a, at })
    }

    /// Build from an existing biadjacency pattern.
    pub fn from_biadjacency(a: Pattern) -> Self {
        let at = a.transpose();
        Self { a, at }
    }

    /// Graph with no edges.
    pub fn empty(m: usize, n: usize) -> Self {
        Self {
            a: Pattern::empty(m, n),
            at: Pattern::empty(n, m),
        }
    }

    /// Complete bipartite graph `K_{m,n}` (every `(u, v)` pair an edge).
    pub fn complete(m: usize, n: usize) -> Self {
        let mut edges = Vec::with_capacity(m * n);
        for u in 0..m as u32 {
            for v in 0..n as u32 {
                edges.push((u, v));
            }
        }
        Self::from_edges(m, n, &edges).expect("complete graph edges are in range")
    }

    /// `|V1|` (rows of `A`).
    #[inline]
    pub fn nv1(&self) -> usize {
        self.a.nrows()
    }

    /// `|V2|` (columns of `A`).
    #[inline]
    pub fn nv2(&self) -> usize {
        self.a.ncols()
    }

    /// Number of vertices on the given side.
    #[inline]
    pub fn nvertices(&self, side: Side) -> usize {
        match side {
            Side::V1 => self.nv1(),
            Side::V2 => self.nv2(),
        }
    }

    /// `|E|`.
    #[inline]
    pub fn nedges(&self) -> usize {
        self.a.nnz()
    }

    /// Biadjacency `A` (rows = V1). This is the CSR view of the paper.
    #[inline]
    pub fn biadjacency(&self) -> &Pattern {
        &self.a
    }

    /// Transposed biadjacency `Aᵀ` (rows = V2). This is the CSC view of `A`:
    /// row `k` of `Aᵀ` is the exposed column `a₁` of the FLAME
    /// repartitioning in invariants 1–4.
    #[inline]
    pub fn biadjacency_t(&self) -> &Pattern {
        &self.at
    }

    /// Sorted V2 neighbours of `u ∈ V1`.
    #[inline]
    pub fn neighbors_v1(&self, u: usize) -> &[u32] {
        self.a.row(u)
    }

    /// Sorted V1 neighbours of `v ∈ V2`.
    #[inline]
    pub fn neighbors_v2(&self, v: usize) -> &[u32] {
        self.at.row(v)
    }

    /// Degree of `u ∈ V1`.
    #[inline]
    pub fn deg_v1(&self, u: usize) -> usize {
        self.a.row_nnz(u)
    }

    /// Degree of `v ∈ V2`.
    #[inline]
    pub fn deg_v2(&self, v: usize) -> usize {
        self.at.row_nnz(v)
    }

    /// Whether edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        // Probe the sparser endpoint's list.
        if self.deg_v1(u as usize) <= self.deg_v2(v as usize) {
            self.a.contains(u as usize, v)
        } else {
            self.at.contains(v as usize, u)
        }
    }

    /// Iterate edges `(u, v)` in row-major order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.a.iter_entries()
    }

    /// The graph with the two vertex sets swapped (`A ↦ Aᵀ`). Butterfly
    /// counts are invariant under this; the eight invariants' *costs* are
    /// not — which is exactly the paper's partition-size finding.
    pub fn swap_sides(&self) -> BipartiteGraph {
        BipartiteGraph {
            a: self.at.clone(),
            at: self.a.clone(),
        }
    }

    /// Biadjacency as a valued CSR matrix (entries = 1).
    pub fn to_csr<T: Scalar>(&self) -> CsrMatrix<T> {
        self.a.to_csr()
    }

    /// Biadjacency as a dense 0/1 matrix — only for the specification-level
    /// counters on small graphs.
    pub fn to_dense<T: Scalar>(&self) -> DenseMatrix<T> {
        self.a.to_dense()
    }

    /// Masked subgraph: drop vertices flagged `false` (their edges vanish)
    /// while *preserving vertex numbering* — the paper's peeling operates on
    /// same-shape masked matrices (`A₁ = A₀ ∘ M`).
    pub fn masked(&self, keep_v1: &[bool], keep_v2: &[bool]) -> BipartiteGraph {
        let a = self.a.mask_rows_cols(keep_v1, keep_v2);
        let at = a.transpose();
        BipartiteGraph { a, at }
    }

    /// Subgraph with a subset of edges removed (peeling k-wings removes
    /// edges, not vertices). `remove` flags edges in the row-major order of
    /// [`Self::edges`].
    pub fn without_edges(&self, remove: &[bool]) -> BipartiteGraph {
        assert_eq!(remove.len(), self.nedges());
        let kept: Vec<(u32, u32)> = self
            .edges()
            .zip(remove)
            .filter(|(_, &r)| !r)
            .map(|(e, _)| e)
            .collect();
        BipartiteGraph::from_edges(self.nv1(), self.nv2(), &kept)
            .expect("subset of existing edges is in range")
    }

    /// Disjoint union: vertices of `other` are appended after `self`'s on
    /// both sides. Butterfly counts add under this operation (used by the
    /// property tests).
    pub fn disjoint_union(&self, other: &BipartiteGraph) -> BipartiteGraph {
        let m = self.nv1() + other.nv1();
        let n = self.nv2() + other.nv2();
        let mut edges: Vec<(u32, u32)> = self.edges().collect();
        edges.extend(
            other
                .edges()
                .map(|(u, v)| (u + self.nv1() as u32, v + self.nv2() as u32)),
        );
        BipartiteGraph::from_edges(m, n, &edges).expect("shifted edges are in range")
    }

    /// Total wedge endpoints-in-V1 count: `Σ_{v ∈ V2} C(deg(v), 2)` — the
    /// number of distinct-endpoint paths of length 2 through V2 wedge
    /// points (paper eq. 6 evaluates to this).
    pub fn wedges_through_v2(&self) -> u64 {
        (0..self.nv2())
            .map(|v| bfly_sparse::choose2(self.deg_v2(v) as u64))
            .sum()
    }

    /// Total wedges with endpoints in V2: `Σ_{u ∈ V1} C(deg(u), 2)`.
    pub fn wedges_through_v1(&self) -> u64 {
        (0..self.nv1())
            .map(|u| bfly_sparse::choose2(self.deg_v1(u) as u64))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 1 butterfly: 2×2 biclique.
    fn butterfly() -> BipartiteGraph {
        BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = butterfly();
        assert_eq!(g.nv1(), 2);
        assert_eq!(g.nv2(), 2);
        assert_eq!(g.nedges(), 4);
        assert_eq!(g.neighbors_v1(0), &[0, 1]);
        assert_eq!(g.neighbors_v2(1), &[0, 1]);
        assert_eq!(g.deg_v1(1), 2);
        assert_eq!(g.deg_v2(0), 2);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = BipartiteGraph::from_edges(1, 2, &[(0, 0), (0, 0), (0, 1)]).unwrap();
        assert_eq!(g.nedges(), 2);
    }

    #[test]
    fn orientations_stay_coherent() {
        let g = BipartiteGraph::from_edges(3, 2, &[(0, 1), (2, 0), (2, 1)]).unwrap();
        for (u, v) in g.edges() {
            assert!(g.biadjacency().contains(u as usize, v));
            assert!(g.biadjacency_t().contains(v as usize, u));
        }
        assert_eq!(g.biadjacency().nnz(), g.biadjacency_t().nnz());
    }

    #[test]
    fn swap_sides_transposes() {
        let g = BipartiteGraph::from_edges(3, 2, &[(0, 1), (2, 0)]).unwrap();
        let s = g.swap_sides();
        assert_eq!(s.nv1(), 2);
        assert_eq!(s.nv2(), 3);
        assert!(s.has_edge(1, 0));
        assert!(s.has_edge(0, 2));
        assert_eq!(s.swap_sides(), g);
    }

    #[test]
    fn complete_graph_counts() {
        let g = BipartiteGraph::complete(3, 4);
        assert_eq!(g.nedges(), 12);
        assert_eq!(g.deg_v1(0), 4);
        assert_eq!(g.deg_v2(3), 3);
    }

    #[test]
    fn masked_preserves_dimensions() {
        let g = butterfly();
        let h = g.masked(&[true, false], &[true, true]);
        assert_eq!(h.nv1(), 2);
        assert_eq!(h.nv2(), 2);
        assert_eq!(h.nedges(), 2);
        assert_eq!(h.deg_v1(1), 0);
    }

    #[test]
    fn without_edges_removes_flagged() {
        let g = butterfly();
        // Edges in row-major order: (0,0), (0,1), (1,0), (1,1).
        let h = g.without_edges(&[false, true, false, false]);
        assert_eq!(h.nedges(), 3);
        assert!(!h.has_edge(0, 1));
        assert!(h.has_edge(1, 1));
    }

    #[test]
    fn disjoint_union_shifts_indices() {
        let g = butterfly();
        let u = g.disjoint_union(&g);
        assert_eq!(u.nv1(), 4);
        assert_eq!(u.nv2(), 4);
        assert_eq!(u.nedges(), 8);
        assert!(u.has_edge(2, 2));
        assert!(!u.has_edge(0, 2));
    }

    #[test]
    fn wedge_totals() {
        let g = butterfly();
        // Each V2 vertex has degree 2 → C(2,2)=1 wedge each.
        assert_eq!(g.wedges_through_v2(), 2);
        assert_eq!(g.wedges_through_v1(), 2);
        let star = BipartiteGraph::from_edges(3, 1, &[(0, 0), (1, 0), (2, 0)]).unwrap();
        assert_eq!(star.wedges_through_v2(), 3); // C(3,2)
        assert_eq!(star.wedges_through_v1(), 0);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::empty(5, 3);
        assert_eq!(g.nedges(), 0);
        assert_eq!(g.wedges_through_v2(), 0);
        assert_eq!(g.nvertices(Side::V1), 5);
        assert_eq!(g.nvertices(Side::V2), 3);
        assert_eq!(Side::V1.other(), Side::V2);
    }
}
