//! Connected components of a bipartite graph.
//!
//! Butterflies never span components, so per-component counts sum to the
//! total — a useful decomposition both for validation (the property suite
//! checks additivity) and for running the counting family on one dense
//! component at a time.

use crate::bipartite::BipartiteGraph;

/// Component labelling of both vertex sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component id of every V1 vertex (isolated vertices get their own).
    pub v1: Vec<u32>,
    /// Component id of every V2 vertex.
    pub v2: Vec<u32>,
    /// Number of components (including singleton isolated vertices).
    pub count: usize,
}

/// Label connected components with an iterative BFS over both sides.
pub fn connected_components(g: &BipartiteGraph) -> Components {
    const UNSET: u32 = u32::MAX;
    let mut v1 = vec![UNSET; g.nv1()];
    let mut v2 = vec![UNSET; g.nv2()];
    let mut next = 0u32;
    let mut queue: Vec<(bool, u32)> = Vec::new();
    for start in 0..g.nv1() {
        if v1[start] != UNSET {
            continue;
        }
        v1[start] = next;
        queue.push((true, start as u32));
        while let Some((is_v1, x)) = queue.pop() {
            if is_v1 {
                for &y in g.neighbors_v1(x as usize) {
                    if v2[y as usize] == UNSET {
                        v2[y as usize] = next;
                        queue.push((false, y));
                    }
                }
            } else {
                for &y in g.neighbors_v2(x as usize) {
                    if v1[y as usize] == UNSET {
                        v1[y as usize] = next;
                        queue.push((true, y));
                    }
                }
            }
        }
        next += 1;
    }
    for c in v2.iter_mut() {
        if *c == UNSET {
            *c = next;
            next += 1;
        }
    }
    Components {
        v1,
        v2,
        count: next as usize,
    }
}

/// Extract component `id` as a masked (dimension-preserving) subgraph.
pub fn component_subgraph(g: &BipartiteGraph, comps: &Components, id: u32) -> BipartiteGraph {
    let keep1: Vec<bool> = comps.v1.iter().map(|&c| c == id).collect();
    let keep2: Vec<bool> = comps.v2.iter().map(|&c| c == id).collect();
    g.masked(&keep1, &keep2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_islands() {
        // Island A: u0–v0–u1; island B: u2–v1.
        let g = BipartiteGraph::from_edges(3, 2, &[(0, 0), (1, 0), (2, 1)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 2);
        assert_eq!(c.v1[0], c.v1[1]);
        assert_ne!(c.v1[0], c.v1[2]);
        assert_eq!(c.v2[0], c.v1[0]);
        assert_eq!(c.v2[1], c.v1[2]);
    }

    #[test]
    fn isolated_vertices_get_singleton_components() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0)]).unwrap();
        let c = connected_components(&g);
        // {u0, v0}, {u1}, {u2}, {v1}, {v2}.
        assert_eq!(c.count, 5);
        let mut ids: Vec<u32> = c.v1.iter().chain(c.v2.iter()).copied().collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn connected_graph_is_one_component() {
        let g = BipartiteGraph::complete(4, 3);
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert!(c.v1.iter().all(|&x| x == 0));
        assert!(c.v2.iter().all(|&x| x == 0));
    }

    #[test]
    fn component_subgraph_isolates_edges() {
        let g =
            BipartiteGraph::from_edges(4, 4, &[(0, 0), (1, 0), (2, 2), (3, 2), (2, 3)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 3); // two edge-components + isolated v1.
        let sub = component_subgraph(&g, &c, c.v1[2]);
        assert_eq!(sub.nedges(), 3);
        assert!(sub.has_edge(2, 2));
        assert!(!sub.has_edge(0, 0));
        // Dimensions preserved for index stability.
        assert_eq!(sub.nv1(), 4);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::empty(2, 2);
        let c = connected_components(&g);
        assert_eq!(c.count, 4);
    }
}
