//! Bounded-retry policy for I/O against possibly-flaky storage.
//!
//! Out-of-core counting turns every shard into a sequence of positioned
//! reads, and on network filesystems or under memory pressure a read can
//! fail *transiently* (`Interrupted`, `WouldBlock`, `TimedOut`) without
//! the file being damaged. Before this layer any such error aborted the
//! whole sharded run. [`RetryPolicy`] classifies error kinds
//! ([`is_transient_io_error`]), retries transient ones a bounded number
//! of times with decorrelated-jitter backoff, and counts every retried
//! attempt and every give-up in a shared [`RetryStats`] so the telemetry
//! layer can surface `io_retries` / `io_giveups` per run.
//!
//! Two consumers:
//!
//! * [`SegmentedGraph`](crate::bfly_format::SegmentedGraph) routes all
//!   positioned payload reads through [`with_retries`].
//! * [`RetryingReader`] wraps any sequential [`Read`] (e.g. the
//!   streaming `.bfly` loader or a text-format parser) with the same
//!   policy.
//!
//! Determinism: the backoff jitter comes from a fixed xorshift sequence
//! seeded by the previous delay and attempt number, not from a clock or
//! OS entropy, so a test that injects `N` transient faults observes an
//! exactly reproducible retry schedule.

use std::io::{self, Read};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Is this `io::ErrorKind` worth retrying?
///
/// Transient kinds describe a read that may succeed if simply reissued:
/// `Interrupted` (signal delivery mid-syscall), `WouldBlock`
/// (non-blocking descriptor or overloaded network mount), and `TimedOut`
/// (remote storage hiccup). Everything else — `NotFound`,
/// `UnexpectedEof` (truncation), `PermissionDenied`, checksum-level
/// format errors — is permanent: retrying cannot help and would only
/// delay the typed failure.
#[inline]
pub fn is_transient_io_error(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Bounded-retry configuration with decorrelated-jitter backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (`1` = never retry).
    pub max_attempts: u32,
    /// First backoff sleep, microseconds (`0` = no sleeping, still
    /// bounded retries — what the in-process tests use).
    pub base_delay_us: u64,
    /// Backoff ceiling, microseconds.
    pub max_delay_us: u64,
}

impl Default for RetryPolicy {
    /// 4 attempts, 100 µs first backoff, 20 ms ceiling: generous enough
    /// to ride out signal storms, cheap enough that exhaustion surfaces
    /// within ~60 ms.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_us: 100,
            max_delay_us: 20_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, no sleeping).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay_us: 0,
            max_delay_us: 0,
        }
    }

    /// Next backoff delay after sleeping `prev_us`, attempt number
    /// `attempt` — decorrelated jitter (`min(cap, uniform[base, 3·prev])`)
    /// from a deterministic xorshift stream, so schedules reproduce.
    pub fn next_delay_us(&self, prev_us: u64, attempt: u32) -> u64 {
        if self.base_delay_us == 0 {
            return 0;
        }
        let lo = self.base_delay_us;
        let hi = (prev_us.max(lo)).saturating_mul(3).max(lo + 1);
        let r = xorshift64star(prev_us ^ ((attempt as u64) << 32) ^ 0x9e37_79b9_7f4a_7c15);
        (lo + r % (hi - lo)).min(self.max_delay_us.max(lo))
    }
}

#[inline]
fn xorshift64star(seed: u64) -> u64 {
    let mut x = seed | 1;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Shared counters for retried attempts and give-ups.
///
/// Lives behind an `Arc` so `&self` read paths (positioned reads hold no
/// recorder) can count; the engine snapshots before/after a run and
/// raises the `io_retries` / `io_giveups` telemetry counters by the
/// delta.
#[derive(Debug, Default)]
pub struct RetryStats {
    retries: AtomicU64,
    giveups: AtomicU64,
}

impl RetryStats {
    /// Fresh zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts that failed transiently and were retried.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Operations abandoned after exhausting the retry budget.
    pub fn giveups(&self) -> u64 {
        self.giveups.load(Ordering::Relaxed)
    }
}

/// Run `op`, retrying transient failures per `policy`, counting into
/// `stats`.
///
/// On exhaustion the final transient error is rewrapped with the attempt
/// count in the message (same `ErrorKind`), so the typed `Io` error the
/// caller surfaces — and the `--json-errors` payload downstream — names
/// how hard we tried. Permanent errors pass through untouched on the
/// first failure.
pub fn with_retries<T>(
    policy: &RetryPolicy,
    stats: &RetryStats,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let budget = policy.max_attempts.max(1);
    let mut delay_us = policy.base_delay_us;
    let mut attempt = 1u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient_io_error(e.kind()) && attempt < budget => {
                stats.retries.fetch_add(1, Ordering::Relaxed);
                if delay_us > 0 {
                    std::thread::sleep(Duration::from_micros(delay_us));
                }
                delay_us = policy.next_delay_us(delay_us, attempt);
                attempt += 1;
            }
            Err(e) if is_transient_io_error(e.kind()) => {
                stats.giveups.fetch_add(1, Ordering::Relaxed);
                return Err(io::Error::new(
                    e.kind(),
                    format!("giving up after {attempt} attempts: {e}"),
                ));
            }
            Err(e) => return Err(e),
        }
    }
}

/// A sequential [`Read`] adapter that retries transient errors.
///
/// Wraps any byte source with a [`RetryPolicy`]; useful for streaming
/// loaders whose source is a network mount (or a fault-injecting test
/// double). Positioned reads inside
/// [`SegmentedGraph`](crate::bfly_format::SegmentedGraph) use the same
/// policy internally and do not need this wrapper.
#[derive(Debug)]
pub struct RetryingReader<R> {
    inner: R,
    policy: RetryPolicy,
    stats: Arc<RetryStats>,
}

impl<R: Read> RetryingReader<R> {
    /// Wrap `inner` with the default policy and fresh stats.
    pub fn new(inner: R) -> Self {
        Self::with_policy(inner, RetryPolicy::default())
    }

    /// Wrap `inner` with an explicit policy.
    pub fn with_policy(inner: R, policy: RetryPolicy) -> Self {
        RetryingReader {
            inner,
            policy,
            stats: Arc::new(RetryStats::new()),
        }
    }

    /// Handle to the shared retry counters.
    pub fn stats(&self) -> Arc<RetryStats> {
        Arc::clone(&self.stats)
    }

    /// Unwrap, returning the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for RetryingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let inner = &mut self.inner;
        with_retries(&self.policy, &self.stats, || inner.read(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fails transiently `n` times, then yields `payload`.
    struct Flaky {
        n: u32,
        payload: Vec<u8>,
        pos: usize,
    }

    impl Read for Flaky {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.n > 0 {
                self.n -= 1;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"));
            }
            let n = buf.len().min(self.payload.len() - self.pos);
            buf[..n].copy_from_slice(&self.payload[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn quick() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay_us: 0,
            max_delay_us: 0,
        }
    }

    #[test]
    fn transient_classification() {
        assert!(is_transient_io_error(io::ErrorKind::Interrupted));
        assert!(is_transient_io_error(io::ErrorKind::WouldBlock));
        assert!(is_transient_io_error(io::ErrorKind::TimedOut));
        assert!(!is_transient_io_error(io::ErrorKind::UnexpectedEof));
        assert!(!is_transient_io_error(io::ErrorKind::NotFound));
        assert!(!is_transient_io_error(io::ErrorKind::PermissionDenied));
    }

    #[test]
    fn retries_then_succeeds_and_counts() {
        let stats = RetryStats::new();
        let mut left = 3u32;
        let out = with_retries(&quick(), &stats, || {
            if left > 0 {
                left -= 1;
                Err(io::Error::new(io::ErrorKind::WouldBlock, "busy"))
            } else {
                Ok(7u32)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(stats.retries(), 3);
        assert_eq!(stats.giveups(), 0);
    }

    #[test]
    fn exhaustion_names_the_attempt_count() {
        let stats = RetryStats::new();
        let out: io::Result<()> = with_retries(&quick(), &stats, || {
            Err(io::Error::new(io::ErrorKind::Interrupted, "always"))
        });
        let e = out.unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::Interrupted);
        assert!(
            e.to_string().contains("after 4 attempts"),
            "message was: {e}"
        );
        assert_eq!(stats.retries(), 3, "3 retried attempts before give-up");
        assert_eq!(stats.giveups(), 1);
    }

    #[test]
    fn permanent_errors_pass_through_immediately() {
        let stats = RetryStats::new();
        let mut calls = 0u32;
        let out: io::Result<()> = with_retries(&quick(), &stats, || {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::UnexpectedEof, "torn"))
        });
        assert_eq!(out.unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
        assert_eq!(calls, 1, "permanent errors must not be retried");
        assert_eq!(stats.retries(), 0);
        assert_eq!(stats.giveups(), 0);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        let a = p.next_delay_us(p.base_delay_us, 1);
        let b = p.next_delay_us(p.base_delay_us, 1);
        assert_eq!(a, b, "same inputs, same jitter");
        let mut d = p.base_delay_us;
        for attempt in 1..20 {
            d = p.next_delay_us(d, attempt);
            assert!(d >= p.base_delay_us);
            assert!(d <= p.max_delay_us);
        }
        assert_eq!(RetryPolicy::none().next_delay_us(0, 1), 0);
    }

    #[test]
    fn retrying_reader_recovers_a_flaky_stream() {
        let payload = b"butterflies".to_vec();
        let mut r = RetryingReader::with_policy(
            Flaky {
                n: 2,
                payload: payload.clone(),
                pos: 0,
            },
            quick(),
        );
        let stats = r.stats();
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, payload);
        assert_eq!(stats.retries(), 2);
    }
}
