//! Vertex orderings and relabelings.
//!
//! The paper's future-work section (§VI) points at degree sorting [3], [12]
//! as the next optimisation for the derived algorithms, and the
//! vertex-priority baseline (Wang et al., VLDB'19) is built entirely on a
//! degree-based total order. This module produces such orders and applies
//! them as graph relabelings so the ablation benches can measure their
//! effect on every invariant.

use crate::bipartite::{BipartiteGraph, Side};

/// Permutation `perm[new_index] = old_index` sorting one side by
/// non-decreasing degree (ties broken by vertex id for determinism).
pub fn degree_ascending(g: &BipartiteGraph, side: Side) -> Vec<u32> {
    let count = g.nvertices(side);
    let mut perm: Vec<u32> = (0..count as u32).collect();
    match side {
        Side::V1 => perm.sort_by_key(|&u| (g.deg_v1(u as usize), u)),
        Side::V2 => perm.sort_by_key(|&v| (g.deg_v2(v as usize), v)),
    }
    perm
}

/// Permutation sorting one side by non-increasing degree.
pub fn degree_descending(g: &BipartiteGraph, side: Side) -> Vec<u32> {
    let mut perm = degree_ascending(g, side);
    perm.reverse();
    perm
}

/// Invert a permutation: `inv[perm[i]] = i`.
pub fn invert_permutation(perm: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        inv[old as usize] = new as u32;
    }
    inv
}

/// Relabel one side of the graph with `perm[new] = old`. The resulting
/// graph is isomorphic (butterfly counts unchanged), but iteration order —
/// and therefore the cost profile of each invariant — changes.
pub fn relabel(g: &BipartiteGraph, side: Side, perm: &[u32]) -> BipartiteGraph {
    match side {
        Side::V1 => {
            let a = g.biadjacency().permute_rows(perm);
            BipartiteGraph::from_biadjacency(a)
        }
        Side::V2 => {
            // Rows of Aᵀ are V2 vertices; permute there, then transpose back.
            let at = g.biadjacency_t().permute_rows(perm);
            BipartiteGraph::from_biadjacency(at.transpose())
        }
    }
}

/// A total priority over *all* `|V1| + |V2|` vertices by non-increasing
/// degree (ties by side, then id). Returns `(rank_v1, rank_v2)`: lower rank
/// = higher priority. This is the order the vertex-priority baseline
/// (BFC-VP) peels wedges in.
pub fn global_degree_ranks(g: &BipartiteGraph) -> (Vec<u32>, Vec<u32>) {
    let m = g.nv1();
    let n = g.nv2();
    // Entries: (degree, side, id). Sort descending by degree.
    let mut all: Vec<(usize, u8, u32)> = Vec::with_capacity(m + n);
    for u in 0..m {
        all.push((g.deg_v1(u), 0, u as u32));
    }
    for v in 0..n {
        all.push((g.deg_v2(v), 1, v as u32));
    }
    all.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut rank_v1 = vec![0u32; m];
    let mut rank_v2 = vec![0u32; n];
    for (rank, &(_, side, id)) in all.iter().enumerate() {
        if side == 0 {
            rank_v1[id as usize] = rank as u32;
        } else {
            rank_v2[id as usize] = rank as u32;
        }
    }
    (rank_v1, rank_v2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BipartiteGraph {
        // degrees V1: [3, 1, 2], V2: [2, 2, 1, 1]
        BipartiteGraph::from_edges(3, 4, &[(0, 0), (0, 1), (0, 2), (1, 0), (2, 1), (2, 3)]).unwrap()
    }

    #[test]
    fn ascending_order_sorts_by_degree() {
        let g = sample();
        let p = degree_ascending(&g, Side::V1);
        let degs: Vec<usize> = p.iter().map(|&u| g.deg_v1(u as usize)).collect();
        assert_eq!(degs, vec![1, 2, 3]);
        let p2 = degree_descending(&g, Side::V2);
        let degs2: Vec<usize> = p2.iter().map(|&v| g.deg_v2(v as usize)).collect();
        assert_eq!(degs2, vec![2, 2, 1, 1]);
    }

    #[test]
    fn invert_roundtrips() {
        let perm = vec![2u32, 0, 3, 1];
        let inv = invert_permutation(&perm);
        for (new, &old) in perm.iter().enumerate() {
            assert_eq!(inv[old as usize], new as u32);
        }
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = sample();
        let p = degree_descending(&g, Side::V1);
        let h = relabel(&g, Side::V1, &p);
        assert_eq!(h.nedges(), g.nedges());
        // New vertex 0 is old highest-degree vertex (old 0, degree 3).
        assert_eq!(h.deg_v1(0), 3);
        // Degree multiset preserved.
        let mut dg: Vec<usize> = (0..3).map(|u| g.deg_v1(u)).collect();
        let mut dh: Vec<usize> = (0..3).map(|u| h.deg_v1(u)).collect();
        dg.sort();
        dh.sort();
        assert_eq!(dg, dh);
    }

    #[test]
    fn relabel_v2_side() {
        let g = sample();
        let p = degree_ascending(&g, Side::V2);
        let h = relabel(&g, Side::V2, &p);
        assert_eq!(h.nedges(), g.nedges());
        let mut dg: Vec<usize> = (0..4).map(|v| g.deg_v2(v)).collect();
        let mut dh: Vec<usize> = (0..4).map(|v| h.deg_v2(v)).collect();
        dg.sort();
        dh.sort();
        assert_eq!(dg, dh);
        // Lowest-degree V2 vertex first after ascending relabel.
        assert_eq!(h.deg_v2(0), 1);
    }

    #[test]
    fn global_ranks_are_a_permutation_and_degree_sorted() {
        let g = sample();
        let (r1, r2) = global_degree_ranks(&g);
        let mut all: Vec<u32> = r1.iter().chain(r2.iter()).copied().collect();
        all.sort();
        let expect: Vec<u32> = (0..(g.nv1() + g.nv2()) as u32).collect();
        assert_eq!(all, expect);
        // Highest-degree vertex (V1 id 0, degree 3) gets rank 0.
        assert_eq!(r1[0], 0);
    }
}
