//! Property tests for the graph layer: structural coherence of the dual
//! orientations, I/O round trips, relabeling isomorphisms, components,
//! and compaction.

use bfly_graph::compact::compact;
use bfly_graph::components::{component_subgraph, connected_components};
use bfly_graph::io::{read_edge_list, write_edge_list};
use bfly_graph::matrix_market::{read_matrix_market, write_matrix_market};
use bfly_graph::ordering::{degree_ascending, degree_descending, invert_permutation, relabel};
use bfly_graph::{BipartiteGraph, Side};
use proptest::prelude::*;

const MAX_SIDE: u32 = 20;

fn arb_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1..=MAX_SIDE, 1..=MAX_SIDE).prop_flat_map(|(m, n)| {
        proptest::collection::vec((0..m, 0..n), 0..60).prop_map(move |edges| {
            BipartiteGraph::from_edges(m as usize, n as usize, &edges).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The two stored orientations always describe the same edge set.
    #[test]
    fn orientations_coherent(g in arb_graph()) {
        prop_assert_eq!(g.biadjacency().transpose(), g.biadjacency_t().clone());
        let degsum1: usize = (0..g.nv1()).map(|u| g.deg_v1(u)).sum();
        let degsum2: usize = (0..g.nv2()).map(|v| g.deg_v2(v)).sum();
        prop_assert_eq!(degsum1, g.nedges());
        prop_assert_eq!(degsum2, g.nedges());
    }

    /// Edge-list and MatrixMarket writers round-trip (up to trailing
    /// isolated vertices, which header-less edge lists cannot encode —
    /// MatrixMarket can and must preserve them exactly).
    #[test]
    fn io_roundtrips(g in arb_graph()) {
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let h = read_matrix_market(buf.as_slice()).unwrap();
        prop_assert_eq!(&h, &g);

        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(buf.as_slice()).unwrap();
        let edges_g: Vec<(u32, u32)> = g.edges().collect();
        let edges_h: Vec<(u32, u32)> = h.edges().collect();
        prop_assert_eq!(edges_g, edges_h);
    }

    /// Relabeling either side is an isomorphism: degree multisets and edge
    /// counts survive, and applying the inverse permutation returns the
    /// original graph.
    #[test]
    fn relabel_isomorphism(g in arb_graph()) {
        for side in [Side::V1, Side::V2] {
            let perm = degree_descending(&g, side);
            let h = relabel(&g, side, &perm);
            prop_assert_eq!(h.nedges(), g.nedges());
            // relabel(h, inverse) — note relabel takes perm[new] = old, so
            // applying the *forward* permutation of the inverse mapping
            // round-trips.
            let inv = invert_permutation(&perm);
            let back = relabel(&h, side, &inv);
            prop_assert_eq!(&back, &g);
            // Ascending then reversing equals descending.
            let asc = degree_ascending(&g, side);
            let mut rev = asc.clone();
            rev.reverse();
            let d1: Vec<usize> = match side {
                Side::V1 => rev.iter().map(|&u| g.deg_v1(u as usize)).collect(),
                Side::V2 => rev.iter().map(|&v| g.deg_v2(v as usize)).collect(),
            };
            prop_assert!(d1.windows(2).all(|w| w[0] >= w[1]));
        }
    }

    /// Components partition the vertex sets, and edges never cross
    /// components.
    #[test]
    fn components_partition(g in arb_graph()) {
        let c = connected_components(&g);
        for (u, v) in g.edges() {
            prop_assert_eq!(c.v1[u as usize], c.v2[v as usize]);
        }
        let max_id = c.v1.iter().chain(c.v2.iter()).max().copied().unwrap_or(0);
        prop_assert!((max_id as usize) < c.count.max(1));
        // Sum of component subgraph edges = total edges.
        let mut total = 0usize;
        for id in 0..c.count as u32 {
            total += component_subgraph(&g, &c, id).nedges();
        }
        prop_assert_eq!(total, g.nedges());
    }

    /// Compaction removes exactly the isolated vertices and keeps every
    /// edge, and the mappings are consistent.
    #[test]
    fn compaction_consistency(g in arb_graph()) {
        let c = compact(&g);
        prop_assert_eq!(c.graph.nedges(), g.nedges());
        prop_assert!(c.graph.nv1() <= g.nv1());
        for u in 0..c.graph.nv1() {
            prop_assert!(c.graph.deg_v1(u) > 0);
            let old = c.original_v1(u as u32) as usize;
            prop_assert_eq!(c.graph.deg_v1(u), g.deg_v1(old));
        }
        for (u, v) in c.graph.edges() {
            prop_assert!(g.has_edge(c.original_v1(u), c.original_v2(v)));
        }
    }

    /// Masking then unmasking semantics: masked graphs preserve dimensions
    /// and only lose edges incident to dropped vertices.
    #[test]
    fn masking_semantics(g in arb_graph(), drop in 0..MAX_SIDE) {
        let drop = (drop as usize) % g.nv1();
        let mut keep = vec![true; g.nv1()];
        keep[drop] = false;
        let h = g.masked(&keep, &vec![true; g.nv2()]);
        prop_assert_eq!(h.nv1(), g.nv1());
        prop_assert_eq!(h.deg_v1(drop), 0);
        prop_assert_eq!(h.nedges(), g.nedges() - g.deg_v1(drop));
        for (u, v) in h.edges() {
            prop_assert!(g.has_edge(u, v));
        }
    }

    /// Wedge totals match their degree-sum definitions.
    #[test]
    fn wedge_totals(g in arb_graph()) {
        let w2: u64 = (0..g.nv2())
            .map(|v| {
                let d = g.deg_v2(v) as u64;
                d * d.saturating_sub(1) / 2
            })
            .sum();
        prop_assert_eq!(g.wedges_through_v2(), w2);
    }
}
