//! Robustness: the parsers must return `Err` — never panic — on arbitrary
//! byte soup, and must be total on anything the writers can produce.

use bfly_graph::io::{read_edge_list, read_konect};
use bfly_graph::matrix_market::read_matrix_market;
use bfly_graph::temporal::read_konect_temporal;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No parser panics on arbitrary ASCII-ish input.
    #[test]
    fn parsers_never_panic(input in "[ -~\n\t]{0,300}") {
        let _ = read_edge_list(input.as_bytes());
        let _ = read_konect(input.as_bytes());
        let _ = read_matrix_market(input.as_bytes());
        let _ = read_konect_temporal(input.as_bytes());
    }

    /// Numeric-looking lines either parse or produce a located error.
    #[test]
    fn numeric_soup(lines in proptest::collection::vec((0u64..1u64<<40, 0u64..1u64<<40), 0..20)) {
        let text: String = lines
            .iter()
            .map(|(a, b)| format!("{a} {b}\n"))
            .collect();
        // Values above u32::MAX must be rejected, not wrapped.
        let res = read_edge_list(text.as_bytes());
        let oversized = lines.iter().any(|&(a, b)| a > u32::MAX as u64 || b > u32::MAX as u64);
        if oversized {
            prop_assert!(res.is_err());
        } else {
            prop_assert!(res.is_ok());
        }
    }
}

#[test]
fn bom_and_crlf_are_tolerated() {
    // The same KONECT file saved by a Windows editor: BOM + CRLF.
    let clean = "% bip unweighted\n% 3 2 2\n1 1\n1 2\n2 2\n";
    let windows = "\u{feff}% bip unweighted\r\n% 3 2 2\r\n1 1\r\n1 2\r\n2 2\r\n";
    let g = read_konect(clean.as_bytes()).unwrap();
    assert_eq!(read_konect(windows.as_bytes()).unwrap(), g);
    // Edge lists and MatrixMarket likewise.
    let el = "\u{feff}0 0\r\n1 1\r\n";
    assert_eq!(read_edge_list(el.as_bytes()).unwrap().nedges(), 2);
    let mtx = "\u{feff}%%MatrixMarket matrix coordinate pattern general\r\n2 2 2\r\n1 1\r\n2 2\r\n";
    assert_eq!(read_matrix_market(mtx.as_bytes()).unwrap().nedges(), 2);
}

#[test]
fn konect_header_contradictions_are_pointed_errors() {
    use bfly_graph::io::IoError;
    // Header says 5 edges, file has 3 data lines.
    let wrong_count = "% 5 2 2\n1 1\n1 2\n2 2\n";
    match read_konect(wrong_count.as_bytes()) {
        Err(IoError::Parse { line, msg }) => {
            assert_eq!(line, 1);
            assert!(msg.contains('5') && msg.contains('3'), "unpointed: {msg}");
        }
        other => panic!("expected a parse error, got {other:?}"),
    }
    // Header says 2x2, an edge names vertex 3.
    let out_of_range = "% 3 2 2\n1 1\n1 2\n3 2\n";
    assert!(matches!(
        read_konect(out_of_range.as_bytes()),
        Err(IoError::Parse { line: 1, .. })
    ));
    // A consistent header fixes the dimensions, keeping isolated vertices.
    let padded = "% 1 4 7\n1 1\n";
    let g = read_konect(padded.as_bytes()).unwrap();
    assert_eq!((g.nv1(), g.nv2()), (4, 7));
    // Non-size comments (and ones past the first data line) are ignored.
    let late_comment = "1 1\n% 9 9 9\n2 2\n";
    assert!(read_konect(late_comment.as_bytes()).is_ok());
}

#[test]
fn matrix_market_entry_count_must_match_declaration() {
    use bfly_graph::io::IoError;
    // Declares 3 entries, provides 2.
    let short = "%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 1\n2 2\n";
    assert!(matches!(
        read_matrix_market(short.as_bytes()),
        Err(IoError::Parse { .. })
    ));
    // Declares 1, provides 2.
    let long = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n2 2\n";
    assert!(read_matrix_market(long.as_bytes()).is_err());
    // Zero-valued entries count as entries (they are just not edges).
    let zeros = "%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 1 0\n2 2 1\n";
    let g = read_matrix_market(zeros.as_bytes()).unwrap();
    assert_eq!(g.nedges(), 1);
}

#[test]
fn loaders_survive_fault_injection() {
    use bfly_core::testkit::FaultyReader;
    use bfly_graph::io::IoError;
    use std::io::ErrorKind;
    let konect = "% bip unweighted\n% 3 2 2\n1 1\n1 2\n2 2\n";
    // Short reads never change the parse.
    for chunk in [1, 2, 3, 7] {
        let g = read_konect(FaultyReader::new(konect.as_bytes()).with_chunk(chunk)).unwrap();
        assert_eq!(g.nedges(), 3);
    }
    // A hard I/O error surfaces as IoError::Io — no panic, no bogus graph.
    for kind in [
        ErrorKind::UnexpectedEof,
        ErrorKind::PermissionDenied,
        ErrorKind::ConnectionReset,
    ] {
        let r = FaultyReader::new(konect.as_bytes())
            .with_chunk(2)
            .with_error_at(8, kind);
        assert!(matches!(read_konect(r), Err(IoError::Io(_))));
    }
    // Retryable interrupts are invisible.
    let r = FaultyReader::new(konect.as_bytes())
        .with_chunk(2)
        .with_error_at(8, ErrorKind::Interrupted);
    assert_eq!(read_konect(r).unwrap().nedges(), 3);
    // Truncation mid-file: either a parse error (header contradiction,
    // torn line) or a clean Err — never a panic. Every prefix length.
    for cut in 0..konect.len() {
        let r = FaultyReader::new(konect.as_bytes()).with_truncation(cut);
        let _ = read_konect(r);
    }
    let mtx = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
    for cut in 0..mtx.len() {
        let r = FaultyReader::new(mtx.as_bytes()).with_truncation(cut);
        let _ = read_matrix_market(r);
    }
}

#[test]
fn specific_hostile_inputs() {
    for bad in [
        "1",                                                    // missing field
        "1 x",                                                  // non-numeric
        "-1 2",                                                 // negative
        "99999999999 1",                                        // overflow
        "%%MatrixMarket matrix array real general\n1 1\n1.0\n", // unsupported layout
    ] {
        assert!(read_edge_list(bad.as_bytes()).is_err() || read_edge_list(bad.as_bytes()).is_ok());
        // The real assertion: no panic reaching here, and KONECT agrees.
        let _ = read_konect(bad.as_bytes());
        let _ = read_matrix_market(bad.as_bytes());
    }
    // Empty and comment-only inputs are valid empty graphs.
    assert_eq!(read_edge_list(b"".as_ref()).unwrap().nedges(), 0);
    assert_eq!(read_edge_list(b"% x\n# y\n".as_ref()).unwrap().nedges(), 0);
}
