//! Robustness: the parsers must return `Err` — never panic — on arbitrary
//! byte soup, and must be total on anything the writers can produce.

use bfly_graph::io::{read_edge_list, read_konect};
use bfly_graph::matrix_market::read_matrix_market;
use bfly_graph::temporal::read_konect_temporal;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No parser panics on arbitrary ASCII-ish input.
    #[test]
    fn parsers_never_panic(input in "[ -~\n\t]{0,300}") {
        let _ = read_edge_list(input.as_bytes());
        let _ = read_konect(input.as_bytes());
        let _ = read_matrix_market(input.as_bytes());
        let _ = read_konect_temporal(input.as_bytes());
    }

    /// Numeric-looking lines either parse or produce a located error.
    #[test]
    fn numeric_soup(lines in proptest::collection::vec((0u64..1u64<<40, 0u64..1u64<<40), 0..20)) {
        let text: String = lines
            .iter()
            .map(|(a, b)| format!("{a} {b}\n"))
            .collect();
        // Values above u32::MAX must be rejected, not wrapped.
        let res = read_edge_list(text.as_bytes());
        let oversized = lines.iter().any(|&(a, b)| a > u32::MAX as u64 || b > u32::MAX as u64);
        if oversized {
            prop_assert!(res.is_err());
        } else {
            prop_assert!(res.is_ok());
        }
    }
}

#[test]
fn specific_hostile_inputs() {
    for bad in [
        "1",                                                    // missing field
        "1 x",                                                  // non-numeric
        "-1 2",                                                 // negative
        "99999999999 1",                                        // overflow
        "%%MatrixMarket matrix array real general\n1 1\n1.0\n", // unsupported layout
    ] {
        assert!(read_edge_list(bad.as_bytes()).is_err() || read_edge_list(bad.as_bytes()).is_ok());
        // The real assertion: no panic reaching here, and KONECT agrees.
        let _ = read_konect(bad.as_bytes());
        let _ = read_matrix_market(bad.as_bytes());
    }
    // Empty and comment-only inputs are valid empty graphs.
    assert_eq!(read_edge_list(b"".as_ref()).unwrap().nedges(), 0);
    assert_eq!(read_edge_list(b"% x\n# y\n".as_ref()).unwrap().nedges(), 0);
}
