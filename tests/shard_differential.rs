//! Shard-by-vertex-range execution is exact: for every fixture, every
//! kernel invariant, every shard count, and every thread-pool width, the
//! sharded counters — in-memory and out-of-core — must equal
//! `count_adaptive` bit for bit. Per-exposed-vertex updates are
//! independent, so vertex-range shards merge by plain addition; these
//! tests pin that algebra against the whole battery.

use bfly::core::telemetry::InMemoryRecorder;
use bfly::core::testkit::fixture_battery;
use bfly::core::{
    count_adaptive, count_adaptive_budgeted, count_segmented, count_segmented_budgeted_recorded,
    count_segmented_sharded_recorded, count_sharded, count_sharded_recorded, try_count_sharded,
    Invariant, ResourceBudget,
};
use bfly::graph::{write_bfly_file, SegmentedGraph};

const SHARDS: [usize; 3] = [1, 2, 4];
const THREADS: [usize; 3] = [1, 2, 4];

#[test]
fn every_invariant_and_shard_count_matches_adaptive() {
    for (name, g) in fixture_battery() {
        let want = count_adaptive(&g).0;
        for inv in Invariant::ALL {
            for shards in SHARDS {
                assert_eq!(
                    count_sharded(&g, inv, shards),
                    want,
                    "{name} {inv} shards={shards}"
                );
                assert_eq!(
                    try_count_sharded(&g, inv, shards).unwrap(),
                    want,
                    "{name} {inv} shards={shards} (checked)"
                );
            }
            // More shards than vertices degrades to one vertex per shard.
            assert_eq!(
                count_sharded(&g, inv, 10_000),
                want,
                "{name} {inv} oversharded"
            );
        }
    }
}

#[test]
fn sharded_counts_are_thread_pool_invariant() {
    // The sharded path merges per-shard partials in shard order, so the
    // ambient rayon pool width must never change the answer (or the
    // shard bookkeeping).
    for (name, g) in fixture_battery() {
        let want = count_adaptive(&g).0;
        let inv = Invariant::Inv2;
        for threads in THREADS {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            for shards in SHARDS {
                let got = pool.install(|| {
                    let mut rec = InMemoryRecorder::new();
                    let n = count_sharded_recorded(&g, inv, shards, &mut rec);
                    let rep = rec.report(vec![]);
                    let processed = rep
                        .counters
                        .iter()
                        .find(|(c, _)| c == "shards_processed")
                        .map(|(_, v)| *v)
                        .unwrap_or(0);
                    assert!(
                        processed >= 1 && processed <= shards as u64,
                        "{name} threads={threads} shards={shards}: processed {processed}"
                    );
                    assert!(rep.gauges.iter().any(|(g, _)| g == "shards_planned"));
                    n
                });
                assert_eq!(got, want, "{name} threads={threads} shards={shards}");
            }
        }
    }
}

#[test]
fn out_of_core_counts_match_in_memory_on_the_battery() {
    let dir = std::env::temp_dir().join(format!("bfly-shard-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (name, g) in fixture_battery() {
        let want = count_adaptive(&g).0;
        let path = dir.join("g.bfly");
        write_bfly_file(&g, &path).unwrap();
        let sg = SegmentedGraph::open(&path).unwrap();
        assert_eq!(count_segmented(&sg).unwrap(), want, "{name}");
        for shards in SHARDS {
            assert_eq!(
                count_segmented_sharded_recorded(&sg, shards, &mut InMemoryRecorder::new())
                    .unwrap(),
                want,
                "{name} shards={shards} (out-of-core)"
            );
        }
        // Byte-driven shard sizing: a small per-shard payload cap forces
        // many shards; the count must not move.
        let r = count_segmented_budgeted_recorded(
            &sg,
            None,
            Some(64),
            &ResourceBudget::unlimited(),
            &mut InMemoryRecorder::new(),
        )
        .unwrap();
        assert!(r.complete, "{name}");
        assert_eq!(r.value.0, want, "{name} shard-bytes=64");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budgeted_sharded_tier_agrees_with_unbudgeted_planner() {
    // Whatever tier the byte budget lands on — degraded in-memory or the
    // sharded out-of-core plan — the count is the same. Sweep caps from
    // generous to absurd and require every successful run to be exact.
    for (name, g) in fixture_battery() {
        let want = count_adaptive(&g).0;
        for cap in [1u64 << 30, 1 << 20, 1 << 14, 1 << 10] {
            let budget = ResourceBudget::unlimited().with_max_bytes(cap);
            match count_adaptive_budgeted(&g, true, &budget) {
                Ok(r) => {
                    assert!(r.complete, "{name} cap={cap}");
                    assert_eq!(r.value.0, want, "{name} cap={cap}");
                }
                Err(bfly::core::BflyError::BudgetExceeded { resource, .. }) => {
                    assert_eq!(resource, "bytes", "{name} cap={cap}")
                }
                Err(other) => panic!("{name} cap={cap}: unexpected {other:?}"),
            }
        }
    }
}
