//! Crash-safe resume is exact: kill an out-of-core sharded count at
//! *every* shard boundary, resume from the checkpoint directory, and the
//! merged count must equal the uninterrupted `count_adaptive` answer bit
//! for bit — across the whole fixture battery, shard counts 2/4/8, and
//! thread-pool widths 1/2/4. A checkpoint whose fingerprint no longer
//! matches the graph/plan must be a typed refusal, never a silent wrong
//! count.
//!
//! The kill uses the deterministic `BFLY_FAULT_SHARD_ERROR` hook (a hard
//! error injected after N shards have completed and been checkpointed).
//! Environment variables are process-global, so every test in this file
//! serialises on one lock; other test files run as separate processes
//! and never see these variables.

use std::sync::Mutex;

use bfly::core::telemetry::InMemoryRecorder;
use bfly::core::testkit::fixture_battery;
use bfly::core::{
    count_adaptive, count_segmented_checkpointed_recorded, BflyError, CheckpointConfig,
    ResourceBudget,
};
use bfly::graph::io::IoError;
use bfly::graph::{write_bfly_file, SegmentedGraph};

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn env_guard() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bfly-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn counter(rec: &mut InMemoryRecorder, name: &str) -> u64 {
    rec.report(vec![])
        .counters
        .iter()
        .find(|(c, _)| c == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn run_checkpointed(
    sg: &SegmentedGraph,
    shards: usize,
    cfg: Option<&CheckpointConfig>,
    rec: &mut InMemoryRecorder,
) -> Result<u64, BflyError> {
    count_segmented_checkpointed_recorded(
        sg,
        Some(shards),
        None,
        &ResourceBudget::unlimited(),
        cfg,
        rec,
    )
    .map(|r| {
        assert!(r.complete);
        r.value.0
    })
}

#[test]
fn kill_at_every_shard_boundary_then_resume_is_bitwise_exact() {
    let _guard = env_guard();
    let dir = tmp_dir("kill");
    for (name, g) in fixture_battery() {
        let want = count_adaptive(&g).0;
        let path = dir.join("g.bfly");
        write_bfly_file(&g, &path).unwrap();
        let sg = SegmentedGraph::open(&path).unwrap();
        for shards in [2usize, 4, 8] {
            // Discover how many shards the planner actually produces
            // (tiny fixtures may fold the request down).
            let mut rec = InMemoryRecorder::new();
            let xi = run_checkpointed(&sg, shards, None, &mut rec).unwrap();
            assert_eq!(xi, want, "{name} shards={shards} uncheckpointed");
            let planned = counter(&mut rec, "shards_processed");
            for k in 1..planned {
                let ck = dir.join(format!("ck-{shards}-{k}"));
                let _ = std::fs::remove_dir_all(&ck);

                // First pass: hard-kill after k shards are durable.
                std::env::set_var("BFLY_FAULT_SHARD_ERROR", k.to_string());
                let cfg = CheckpointConfig::new(&ck);
                let killed =
                    run_checkpointed(&sg, shards, Some(&cfg), &mut InMemoryRecorder::new());
                std::env::remove_var("BFLY_FAULT_SHARD_ERROR");
                assert!(
                    matches!(killed, Err(BflyError::Io(IoError::Io(_)))),
                    "{name} shards={shards} k={k}: expected injected kill, got {killed:?}"
                );

                // Second pass: resume must skip exactly the k durable
                // shards and land on the uninterrupted answer.
                let cfg = CheckpointConfig::resume(&ck);
                let mut rec = InMemoryRecorder::new();
                let xi = run_checkpointed(&sg, shards, Some(&cfg), &mut rec).unwrap();
                assert_eq!(xi, want, "{name} shards={shards} k={k} resumed");
                assert_eq!(
                    counter(&mut rec, "shards_skipped_resume"),
                    k,
                    "{name} shards={shards} k={k}: wrong skip count"
                );
                assert_eq!(
                    counter(&mut rec, "checkpoints_written"),
                    planned - k,
                    "{name} shards={shards} k={k}: wrong persist count"
                );
                let _ = std::fs::remove_dir_all(&ck);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_is_thread_pool_invariant() {
    let _guard = env_guard();
    let dir = tmp_dir("threads");
    // A fixture with real wedge work on both sides.
    let (name, g) = fixture_battery()
        .into_iter()
        .max_by_key(|(_, g)| g.nedges())
        .unwrap();
    let want = count_adaptive(&g).0;
    let path = dir.join("g.bfly");
    write_bfly_file(&g, &path).unwrap();
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        for shards in [2usize, 4, 8] {
            let ck = dir.join(format!("ck-{threads}-{shards}"));
            let sg = SegmentedGraph::open(&path).unwrap();
            std::env::set_var("BFLY_FAULT_SHARD_ERROR", "1");
            let killed = pool.install(|| {
                run_checkpointed(
                    &sg,
                    shards,
                    Some(&CheckpointConfig::new(&ck)),
                    &mut InMemoryRecorder::new(),
                )
            });
            std::env::remove_var("BFLY_FAULT_SHARD_ERROR");
            assert!(killed.is_err(), "{name} threads={threads} shards={shards}");
            let xi = pool
                .install(|| {
                    run_checkpointed(
                        &sg,
                        shards,
                        Some(&CheckpointConfig::resume(&ck)),
                        &mut InMemoryRecorder::new(),
                    )
                })
                .unwrap();
            assert_eq!(xi, want, "{name} threads={threads} shards={shards}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fully_checkpointed_run_resumes_by_skipping_everything() {
    let _guard = env_guard();
    let dir = tmp_dir("full");
    let (_, g) = fixture_battery()
        .into_iter()
        .max_by_key(|(_, g)| g.nedges())
        .unwrap();
    let want = count_adaptive(&g).0;
    let path = dir.join("g.bfly");
    write_bfly_file(&g, &path).unwrap();
    let sg = SegmentedGraph::open(&path).unwrap();
    let ck = dir.join("ck");
    let mut rec = InMemoryRecorder::new();
    let xi = run_checkpointed(&sg, 4, Some(&CheckpointConfig::new(&ck)), &mut rec).unwrap();
    assert_eq!(xi, want);
    let planned = counter(&mut rec, "shards_processed");
    assert!(planned >= 2);
    // Resume with nothing left to do: every shard merges from disk.
    let mut rec = InMemoryRecorder::new();
    let xi = run_checkpointed(&sg, 4, Some(&CheckpointConfig::resume(&ck)), &mut rec).unwrap();
    assert_eq!(xi, want);
    assert_eq!(counter(&mut rec, "shards_skipped_resume"), planned);
    assert_eq!(counter(&mut rec, "shards_processed"), 0);
    assert_eq!(counter(&mut rec, "wedges_expanded"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_checkpoint_is_a_typed_refusal_never_a_wrong_count() {
    let _guard = env_guard();
    let dir = tmp_dir("stale");
    let battery = fixture_battery();
    let mut nonempty = battery.iter().filter(|(_, g)| g.nedges() > 20);
    let (_, g1) = nonempty.next().unwrap();
    let (_, g2) = nonempty.next_back().unwrap();
    let path = dir.join("g.bfly");
    write_bfly_file(g1, &path).unwrap();
    let sg = SegmentedGraph::open(&path).unwrap();
    let ck = dir.join("ck");
    run_checkpointed(
        &sg,
        4,
        Some(&CheckpointConfig::new(&ck)),
        &mut InMemoryRecorder::new(),
    )
    .unwrap();

    // Same directory, different shard layout: fingerprint mismatch.
    let err = run_checkpointed(
        &sg,
        8,
        Some(&CheckpointConfig::resume(&ck)),
        &mut InMemoryRecorder::new(),
    )
    .unwrap_err();
    assert!(
        matches!(&err, BflyError::Io(IoError::Format(m)) if m.contains("fingerprint mismatch")),
        "layout change: got {err:?}"
    );

    // The graph file was edited underneath the checkpoint: refusal again.
    write_bfly_file(g2, &path).unwrap();
    let sg2 = SegmentedGraph::open(&path).unwrap();
    let err = run_checkpointed(
        &sg2,
        4,
        Some(&CheckpointConfig::resume(&ck)),
        &mut InMemoryRecorder::new(),
    )
    .unwrap_err();
    assert!(
        matches!(&err, BflyError::Io(IoError::Format(m)) if m.contains("fingerprint mismatch")),
        "edited graph: got {err:?}"
    );

    // Dropping --resume starts fresh in the same directory and is exact.
    let want = count_adaptive(g2).0;
    let xi = run_checkpointed(
        &sg2,
        4,
        Some(&CheckpointConfig::new(&ck)),
        &mut InMemoryRecorder::new(),
    )
    .unwrap();
    assert_eq!(xi, want);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_shard_records_are_recounted_not_trusted() {
    let _guard = env_guard();
    let dir = tmp_dir("corrupt");
    let (_, g) = fixture_battery()
        .into_iter()
        .max_by_key(|(_, g)| g.nedges())
        .unwrap();
    let want = count_adaptive(&g).0;
    let path = dir.join("g.bfly");
    write_bfly_file(&g, &path).unwrap();
    let sg = SegmentedGraph::open(&path).unwrap();
    let ck = dir.join("ck");
    run_checkpointed(
        &sg,
        4,
        Some(&CheckpointConfig::new(&ck)),
        &mut InMemoryRecorder::new(),
    )
    .unwrap();
    // Flip one payload byte in every shard record: each fails its
    // checksum on load, is recounted from the graph, and the final
    // answer is still exact.
    let mut flipped = 0;
    for entry in std::fs::read_dir(&ck).unwrap() {
        let p = entry.unwrap().path();
        let name = p.file_name().unwrap().to_string_lossy().to_string();
        if name.starts_with("shard-") {
            let mut bytes = std::fs::read(&p).unwrap();
            let mid = bytes.len() - 8;
            bytes[mid] ^= 0xff;
            std::fs::write(&p, bytes).unwrap();
            flipped += 1;
        }
    }
    assert!(flipped >= 2);
    let mut rec = InMemoryRecorder::new();
    let xi = run_checkpointed(&sg, 4, Some(&CheckpointConfig::resume(&ck)), &mut rec).unwrap();
    assert_eq!(xi, want);
    assert_eq!(counter(&mut rec, "shards_skipped_resume"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
