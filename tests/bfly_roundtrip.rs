//! `.bfly` on-disk format: round-trip fidelity and fault tolerance.
//!
//! The format is only trustworthy if (a) every graph the generators can
//! produce survives graph → bytes → graph unchanged, (b) the segmented
//! reader sees exactly the same structure through its windowed API as
//! the eager loader does, and (c) every way a file can be damaged —
//! truncation, bit rot, interleaved I/O errors, short reads — surfaces
//! as a typed [`IoError`], never a panic and never a silently wrong
//! graph.

use bfly::core::testkit::{arb_graph, fixture_battery, FaultyReader};
use bfly::core::{count_adaptive, count_segmented};
use bfly::graph::io::IoError;
use bfly::graph::{read_bfly, write_bfly, write_bfly_file, BipartiteGraph, SegmentedGraph, Side};
use proptest::prelude::*;

fn to_bytes(g: &BipartiteGraph) -> Vec<u8> {
    let mut buf = Vec::new();
    write_bfly(g, &mut buf).expect("in-memory write cannot fail");
    buf
}

fn nbrs(g: &BipartiteGraph, side: Side, u: usize) -> &[u32] {
    match side {
        Side::V1 => g.neighbors_v1(u),
        Side::V2 => g.neighbors_v2(u),
    }
}

#[test]
fn battery_round_trips_through_bfly_bytes() {
    for (name, g) in fixture_battery() {
        let bytes = to_bytes(&g);
        let back = read_bfly(&bytes[..]).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back, g, "{name}: byte round-trip must be lossless");
    }
}

#[test]
fn battery_round_trips_through_segmented_reader() {
    let dir = std::env::temp_dir().join(format!("bfly-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (name, g) in fixture_battery() {
        let path = dir.join("g.bfly");
        write_bfly_file(&g, &path).unwrap();
        let sg = SegmentedGraph::open(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(sg.nv1(), g.nv1(), "{name}");
        assert_eq!(sg.nv2(), g.nv2(), "{name}");
        assert_eq!(sg.nedges(), g.nedges() as u64, "{name}");
        for side in [Side::V1, Side::V2] {
            let want: Vec<u32> = (0..g.nvertices(side))
                .map(|u| nbrs(&g, side, u).len() as u32)
                .collect();
            assert_eq!(sg.degrees(side), &want[..], "{name} {side:?}");
        }
        // The windowed segment API reassembles the exact adjacency.
        let full = sg.load().unwrap();
        assert_eq!(full, g, "{name}: segmented load must be lossless");
        // And the out-of-core counter agrees with the in-memory family.
        assert_eq!(
            count_segmented(&sg).unwrap(),
            count_adaptive(&g).0,
            "{name}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_at_every_boundary_is_a_typed_error() {
    let g = fixture_battery().swap_remove(0).1;
    let bytes = to_bytes(&g);
    // Cut the stream at a spread of offsets: inside the header, inside
    // the degree arrays, inside the payload indexes, inside the varint
    // payload, and one byte short of complete.
    let cuts = [
        0,
        7,
        56,
        111,
        112,
        bytes.len() / 4,
        bytes.len() / 2,
        bytes.len() - 1,
    ];
    for cut in cuts {
        let r = FaultyReader::new(&bytes[..]).with_truncation(cut);
        match read_bfly(r) {
            Err(IoError::Io(_) | IoError::Format(_)) => {}
            Ok(_) => panic!("truncation at {cut} of {} must not parse", bytes.len()),
            Err(other) => panic!("truncation at {cut}: unexpected error {other:?}"),
        }
    }
}

#[test]
fn interleaved_io_errors_surface_not_panic() {
    let g = fixture_battery().swap_remove(0).1;
    let bytes = to_bytes(&g);
    for at in [0, 50, bytes.len() / 2, bytes.len() - 1] {
        // One-byte reads make every offset a read-call boundary, so the
        // injected error fires exactly at `at` regardless of how the
        // loader batches its reads.
        let r = FaultyReader::new(&bytes[..])
            .with_chunk(1)
            .with_error_at(at, std::io::ErrorKind::ConnectionReset);
        match read_bfly(r) {
            Err(IoError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "at {at}")
            }
            other => panic!("hard error at {at}: expected Io, got {other:?}"),
        }
    }
    // Interrupted is retryable: std's read_exact retries it, so the load
    // must succeed anyway.
    let r = FaultyReader::new(&bytes[..])
        .with_error_at(bytes.len() / 2, std::io::ErrorKind::Interrupted);
    assert_eq!(read_bfly(r).unwrap(), g);
}

#[test]
fn short_reads_do_not_change_the_parse() {
    let g = fixture_battery().swap_remove(0).1;
    let bytes = to_bytes(&g);
    for chunk in [1, 3, 7, 113] {
        let r = FaultyReader::new(&bytes[..]).with_chunk(chunk);
        assert_eq!(read_bfly(r).unwrap(), g, "chunk {chunk}");
    }
}

#[test]
fn single_byte_corruption_never_panics_and_never_lies_quietly() {
    // Flip one byte at a time across the whole file. Every outcome must
    // be either a typed error or a graph that still decodes — the loader
    // may not panic, and corruption inside the header/degree sections is
    // always caught (checksums + layout checks).
    let g = fixture_battery().swap_remove(0).1;
    let bytes = to_bytes(&g);
    let deg_end = 112 + 4 * (g.nv1() + g.nv2());
    for pos in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        match read_bfly(&bad[..]) {
            Err(IoError::Format(_) | IoError::Io(_)) => {}
            Err(other) => panic!("byte {pos}: unexpected error {other:?}"),
            Ok(_) if pos < deg_end => {
                panic!("byte {pos}: header/degree corruption must be detected")
            }
            Ok(_) => {} // payload flips may decode to a different valid row
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary graphs survive the byte round-trip unchanged.
    #[test]
    fn arbitrary_graphs_round_trip(g in arb_graph()) {
        let bytes = to_bytes(&g);
        prop_assert_eq!(read_bfly(&bytes[..]).unwrap(), g);
    }

    /// The segmented reader agrees with the eager loader on arbitrary
    /// graphs, window by window.
    #[test]
    fn arbitrary_graphs_round_trip_segmented(g in arb_graph()) {
        let dir = std::env::temp_dir()
            .join(format!("bfly-roundtrip-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bfly");
        write_bfly_file(&g, &path).unwrap();
        let sg = SegmentedGraph::open(&path).unwrap();
        prop_assert_eq!(sg.load().unwrap(), g.clone());
        // Windowed decode: split each side into two ranges and check the
        // concatenation matches the full adjacency.
        for side in [Side::V1, Side::V2] {
            let n = g.nvertices(side);
            let mid = n / 2;
            let mut rows: Vec<Vec<u32>> = Vec::new();
            for (lo, hi) in [(0, mid), (mid, n)] {
                let seg = sg.segment(side, lo, hi).unwrap();
                for u in lo..hi {
                    rows.push(seg.neighbors(u).to_vec());
                }
            }
            for (u, row) in rows.iter().enumerate() {
                prop_assert_eq!(&row[..], nbrs(&g, side, u));
            }
        }
        prop_assert_eq!(count_segmented(&sg).unwrap(), count_adaptive(&g).0);
    }
}
