//! Stress: per-thread trace recording must not change what is counted.
//!
//! The parallel family records each chunk into its own
//! [`bfly::core::telemetry::ThreadTrace`] and merges the streams at join
//! time. These tests pin the contract that merging is lossless: for every
//! invariant, thread count, and seed, the merged counter totals equal the
//! sequential recorder's, the butterfly count is unchanged, and the
//! per-thread span streams cover every chunk exactly once.

use bfly::core::telemetry::{
    parse_exposition, to_openmetrics, validate_exposition, Counter, InMemoryRecorder, Json,
    MetricsHub,
};
use bfly::core::{count_parallel_recorded, count_parallel_shared, count_recorded, Invariant};
use bfly::graph::generators::{chung_lu, uniform_exact};
use bfly::graph::BipartiteGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graphs() -> Vec<BipartiteGraph> {
    let mut out = Vec::new();
    for seed in [7u64, 99, 2024] {
        let mut rng = StdRng::seed_from_u64(seed);
        out.push(uniform_exact(120, 90, 900, &mut rng));
    }
    let mut rng = StdRng::seed_from_u64(5150);
    out.push(chung_lu(200, 160, 1400, 0.8, 0.8, &mut rng));
    out.push(BipartiteGraph::complete(12, 10));
    out.push(BipartiteGraph::empty(40, 40));
    out
}

fn sequential_tally(g: &BipartiteGraph, inv: Invariant) -> (u64, Vec<(Counter, u64)>) {
    let mut rec = InMemoryRecorder::new();
    let xi = count_recorded(g, inv, &mut rec);
    let tally = Counter::ALL
        .into_iter()
        .map(|c| (c, rec.counter(c)))
        .collect();
    (xi, tally)
}

/// The work counters shared by the sequential and parallel paths. The
/// parallel path additionally bumps `ParChunks`, which the sequential one
/// never touches, so it is compared separately.
fn comparable(c: Counter) -> bool {
    c != Counter::ParChunks
}

#[test]
fn merged_parallel_counters_equal_sequential_for_all_invariants() {
    for g in graphs() {
        for inv in Invariant::ALL {
            let (seq_xi, seq_tally) = sequential_tally(&g, inv);
            for threads in [1usize, 2, 3, 4, 7] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let mut rec = InMemoryRecorder::new();
                let par_xi = pool.install(|| count_parallel_recorded(&g, inv, &mut rec));
                assert_eq!(par_xi, seq_xi, "{inv} with {threads} threads: count");
                for &(c, want) in seq_tally.iter().filter(|(c, _)| comparable(*c)) {
                    assert_eq!(
                        rec.counter(c),
                        want,
                        "{inv} with {threads} threads: counter {}",
                        c.name()
                    );
                }
            }
        }
    }
}

#[test]
fn every_chunk_leaves_exactly_one_span_and_latency_sample() {
    let mut rng = StdRng::seed_from_u64(31);
    let g = uniform_exact(150, 150, 1200, &mut rng);
    for threads in [2usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let mut rec = InMemoryRecorder::new();
        pool.install(|| count_parallel_recorded(&g, Invariant::Inv2, &mut rec));
        let nchunks = rec.counter(Counter::ParChunks);
        assert!(nchunks >= 1);
        let chunk_spans = rec
            .spans()
            .iter()
            .filter(|s| s.name == "chunk")
            .collect::<Vec<_>>();
        assert_eq!(chunk_spans.len() as u64, nchunks, "{threads} threads");
        // Worker tracks are numbered from 1 and each chunk has its own.
        let mut tids: Vec<u32> = chunk_spans.iter().map(|s| s.thread).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len() as u64, nchunks);
        assert!(tids.iter().all(|&t| t >= 1));
        // Per-chunk latency histogram has one sample per chunk.
        let hist = rec.histogram("chunk_us").expect("chunk_us histogram");
        assert_eq!(hist.count(), nchunks);
    }
}

/// The live-hub acceptance pin: workers recording straight into a shared
/// [`MetricsHub`] (no per-thread buffering, no merge step) must land on
/// counter totals bitwise-equal to the sequential recorder's, for every
/// invariant and thread count.
#[test]
fn shared_hub_counter_totals_equal_sequential_for_all_invariants() {
    for g in graphs() {
        for inv in Invariant::ALL {
            let (seq_xi, seq_tally) = sequential_tally(&g, inv);
            for threads in [1usize, 2, 4] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let hub = MetricsHub::new();
                let par_xi = pool.install(|| count_parallel_shared(&g, inv, &hub));
                assert_eq!(par_xi, seq_xi, "{inv} with {threads} threads: count");
                let snap = hub.snapshot();
                for &(c, want) in seq_tally.iter().filter(|(c, _)| comparable(*c)) {
                    assert_eq!(
                        snap.counter(c),
                        want,
                        "{inv} with {threads} threads: hub counter {}",
                        c.name()
                    );
                }
            }
        }
    }
}

/// Raw hammering: N threads incrementing the same counters and histogram
/// concurrently must lose nothing — totals equal the single-threaded sum
/// exactly (the atomics are relaxed, but additions commute).
#[test]
fn hub_hammered_from_threads_matches_single_threaded_sums() {
    let hub = MetricsHub::new();
    let threads = 8u64;
    let per = 20_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let hub = &hub;
            s.spawn(move || {
                for i in 0..per {
                    hub.incr(Counter::WedgesExpanded, 1);
                    hub.incr(Counter::SpaScatters, 2);
                    hub.record_hist("hammer_us", t * per + i);
                }
            });
        }
    });
    let snap = hub.snapshot();
    assert_eq!(snap.counter(Counter::WedgesExpanded), threads * per);
    assert_eq!(snap.counter(Counter::SpaScatters), 2 * threads * per);
    let h = snap.histogram("hammer_us").expect("hammer_us histogram");
    assert_eq!(h.count(), threads * per);
    // Sum of 0..threads*per — every sample landed exactly once.
    let n = threads * per;
    assert_eq!(h.sum(), n * (n - 1) / 2);
}

/// A live hub snapshot exports to OpenMetrics text that passes the
/// structural validator and round-trips through the parser with the
/// counter totals intact.
#[test]
fn hub_snapshot_openmetrics_round_trip() {
    let mut rng = StdRng::seed_from_u64(4096);
    let g = uniform_exact(100, 80, 700, &mut rng);
    let hub = MetricsHub::new();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    pool.install(|| count_parallel_shared(&g, Invariant::Inv2, &hub));
    let snap = hub.snapshot();
    let rep = snap.to_report(vec![(
        "command".to_string(),
        Json::Str("count".to_string()),
    )]);
    let text = to_openmetrics(&rep);
    validate_exposition(&text).expect("valid OpenMetrics exposition");
    let exp = parse_exposition(&text).expect("parseable exposition");
    assert_eq!(
        exp.value("bfly_wedges_expanded_total"),
        Some(snap.counter(Counter::WedgesExpanded) as f64),
        "counter survives the text round-trip"
    );
}

#[test]
fn repeated_recorded_runs_are_deterministic() {
    let mut rng = StdRng::seed_from_u64(616);
    let g = chung_lu(180, 140, 1100, 0.7, 0.7, &mut rng);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let tally_of = || {
        let mut rec = InMemoryRecorder::new();
        let xi = pool.install(|| count_parallel_recorded(&g, Invariant::Inv6, &mut rec));
        let tally: Vec<(Counter, u64)> = Counter::ALL
            .into_iter()
            .map(|c| (c, rec.counter(c)))
            .collect();
        (xi, tally)
    };
    let first = tally_of();
    for _ in 0..4 {
        assert_eq!(tally_of(), first);
    }
}
