//! Integration tests for the instrumentation layer: the work counters the
//! engine reports must match closed-form combinatorics, the no-op recorder
//! must not change results, and [`RunReport`] JSON must round-trip.

use bfly::core::peel::{k_tip_recorded, k_wing_recorded};
use bfly::core::telemetry::{Counter, InMemoryRecorder, Json, RunReport};
use bfly::core::{count, count_parallel_recorded, count_recorded, Invariant};
use bfly::graph::{BipartiteGraph, Side};
use proptest::prelude::*;

const MAX_SIDE: u32 = 24;

fn arb_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1..=MAX_SIDE, 1..=MAX_SIDE).prop_flat_map(|(m, n)| {
        proptest::collection::vec((0..m, 0..n), 0..80).prop_map(move |edges| {
            BipartiteGraph::from_edges(m as usize, n as usize, &edges)
                .expect("bounded edges are valid")
        })
    })
}

/// Σ over one side of C(deg, 2): the number of wedges centered there.
fn analytic_wedges(g: &BipartiteGraph, center: Side) -> u64 {
    let degs: Vec<u64> = match center {
        Side::V1 => (0..g.nv1())
            .map(|u| g.neighbors_v1(u).len() as u64)
            .collect(),
        Side::V2 => (0..g.nv2())
            .map(|v| g.neighbors_v2(v).len() as u64)
            .collect(),
    };
    degs.iter().map(|&d| d * d.saturating_sub(1) / 2).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine expands exactly one wedge per unordered neighbour pair of
    /// each center vertex: `wedges_expanded` equals Σ C(deg, 2) over the
    /// side *opposite* the partitioned one, for every invariant, regardless
    /// of traversal direction or update part.
    #[test]
    fn wedges_expanded_matches_analytic_count(g in arb_graph()) {
        for inv in Invariant::ALL {
            let center = match inv.partitioned_side() {
                Side::V2 => Side::V1,
                Side::V1 => Side::V2,
            };
            let want = analytic_wedges(&g, center);
            let mut rec = InMemoryRecorder::new();
            let xi = count_recorded(&g, inv, &mut rec);
            prop_assert_eq!(xi, count(&g, inv), "{} count drifted", inv);
            prop_assert_eq!(
                rec.counter(Counter::WedgesExpanded),
                want,
                "{} wedge counter",
                inv
            );
            // Every wedge is exactly one accumulator scatter.
            prop_assert_eq!(rec.counter(Counter::SpaScatters), want, "{} scatters", inv);
        }
    }

    /// The recorded parallel path splits the same work across chunks: the
    /// merged counters equal the sequential ones and the per-chunk series
    /// sums to the total.
    #[test]
    fn parallel_chunks_partition_the_work(g in arb_graph()) {
        let inv = Invariant::Inv2;
        let want = analytic_wedges(&g, Side::V1);
        let mut rec = InMemoryRecorder::new();
        let xi = count_parallel_recorded(&g, inv, &mut rec);
        prop_assert_eq!(xi, count(&g, inv));
        prop_assert_eq!(rec.counter(Counter::WedgesExpanded), want);
        let rep = rec.report(Vec::new());
        let per_chunk: f64 = rep
            .series
            .iter()
            .find(|(n, _)| n == "par_chunk_wedges")
            .map(|(_, v)| v.iter().sum())
            .unwrap_or(0.0);
        prop_assert_eq!(per_chunk as u64, want);
    }
}

#[test]
fn progress_fraction_reaches_exactly_one_for_global_order_kernels() {
    // The forecast fix: the priority/ranked members seed the progress
    // monitor with the closed-form priority wedge total instead of the
    // one-side Σ C(deg, 2) formula, so the final heartbeat lands on
    // fraction == 1.0 exactly — never short of it, and (pinned via the
    // un-clamped done/total identity) never past it.
    use bfly::core::adaptive::{select_plan, GraphProfile, Member};
    use bfly::core::family::{count_priority_recorded, count_ranked_recorded};
    use bfly::core::telemetry::ProgressModel;
    use bfly::core::testkit::skewed_graph;

    let g = skewed_graph(160, 120, 1600, 1.0, 42);
    let p = GraphProfile::compute(&g);
    for (parallel, want_member) in [(false, Member::Priority), (true, Member::Ranked)] {
        let plan = select_plan(&p, parallel, 4);
        assert_eq!(plan.member, want_member, "stand-in must select the kernel");
        let forecast = plan.forecast();
        assert_eq!(forecast.counter, Counter::WedgesExpanded);
        let mut rec = InMemoryRecorder::new();
        match want_member {
            Member::Priority => count_priority_recorded(&g, &mut rec),
            Member::Ranked => count_ranked_recorded(&g, &mut rec),
            Member::Fixed(_) => unreachable!(),
        };
        let done = rec.counter(forecast.counter);
        assert_eq!(done, forecast.total, "{want_member:?}: forecast drifted");
        let mut model = ProgressModel::new(forecast.total);
        model.observe(done);
        // Exactly 1.0 *without* the finish() snap: the forecast itself
        // is exact, so the clamp never engages in either direction.
        assert_eq!(model.fraction(), 1.0, "{want_member:?}");
    }
}

#[test]
fn run_report_round_trips_through_json() {
    // Exercise counters, gauges, phases, and series in one report.
    let g = BipartiteGraph::complete(6, 5);
    let mut rec = InMemoryRecorder::new();
    let xi = count_recorded(&g, Invariant::Inv1, &mut rec);
    let tip = k_tip_recorded(&g, Side::V1, 1, &mut rec);
    let wing = k_wing_recorded(&g, 1, &mut rec);
    assert!(tip.keep.iter().all(|&b| b));
    assert!(wing.keep.iter().all(|&b| b));
    let rep = rec.report(vec![
        ("dataset".to_string(), Json::Str("K(6,5)".to_string())),
        ("butterflies".to_string(), Json::UInt(xi)),
        ("scale".to_string(), Json::Float(0.5)),
    ]);

    let text = rep.to_json_string();
    let back = RunReport::parse(&text).expect("report JSON parses");
    // Value-level identity: counters, meta, gauges, series all survive;
    // serializing again yields byte-identical JSON.
    assert_eq!(back.schema_version, RunReport::SCHEMA_VERSION);
    assert_eq!(back.counters, rep.counters);
    assert_eq!(back.meta, rep.meta);
    assert_eq!(back.gauges, rep.gauges);
    assert_eq!(back.series, rep.series);
    assert_eq!(back.to_json_string(), text);

    // The interesting counters are actually non-zero on this input.
    assert!(rep.counter("wedges_expanded").unwrap() > 0);
    assert!(rep.counter("peel_rounds").unwrap() >= 2); // tip + wing rounds
    assert!(!rep.phases.is_empty());
}

#[test]
fn noop_and_recorded_paths_agree() {
    let g = BipartiteGraph::complete(5, 4);
    for inv in Invariant::ALL {
        let mut rec = InMemoryRecorder::new();
        assert_eq!(count_recorded(&g, inv, &mut rec), count(&g, inv));
    }
}

#[test]
fn spans_and_histograms_survive_the_json_round_trip() {
    let g = BipartiteGraph::complete(8, 7);
    let mut rec = InMemoryRecorder::new();
    count_parallel_recorded(&g, Invariant::Inv2, &mut rec);
    let rep = rec.report(Vec::new());
    assert!(!rep.spans.is_empty(), "parallel run must leave chunk spans");
    assert!(
        rep.histograms.iter().any(|(n, _)| n == "chunk_us"),
        "parallel run must record chunk latencies"
    );
    let back = RunReport::parse(&rep.to_json_string()).unwrap();
    assert_eq!(back.spans, rep.spans);
    assert_eq!(back.to_json_string(), rep.to_json_string());
    // The trace exporter produces one named track per worker thread.
    let trace = rep.to_chrome_trace_string();
    for t in rep.span_threads() {
        if t > 0 {
            assert!(trace.contains(&format!("worker-{t}")), "track {t} missing");
        }
    }
}

#[test]
fn v1_reports_parse_and_future_schemas_are_rejected() {
    // A schema v1 document (no spans/histograms fields) still loads.
    let v1 = r#"{
        "schema_version": 1,
        "meta": {"dataset": "legacy"},
        "counters": {"wedges_expanded": 42},
        "gauges": {},
        "phases": [],
        "series": {}
    }"#;
    let rep = RunReport::parse(v1).expect("v1 must stay readable");
    assert_eq!(rep.counter("wedges_expanded"), Some(42));
    assert!(rep.spans.is_empty());
    assert!(rep.histograms.is_empty());

    // A report from a future build is refused with a pointed message.
    let future = v1.replace("\"schema_version\": 1", "\"schema_version\": 3");
    let err = RunReport::parse(&future).unwrap_err();
    assert!(
        matches!(
            err,
            bfly::core::telemetry::ReportError::FutureSchema { found: 3, .. }
        ),
        "should classify as FutureSchema: {err:?}"
    );
    let msg = err.to_string();
    assert!(msg.contains("newer"), "unhelpful error: {msg}");
}
