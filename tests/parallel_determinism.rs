//! Stress: the parallel family must be deterministic and thread-count
//! independent — the property Fig. 11's measurements rest on.

use bfly::core::{count, count_parallel_with_threads, Invariant};
use bfly::graph::generators::chung_lu;
use bfly::graph::StandIn;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn counts_identical_across_thread_counts() {
    let g = StandIn::RecordLabels.generate_scaled(0.02);
    let seq = count(&g, Invariant::Inv2);
    for inv in [
        Invariant::Inv1,
        Invariant::Inv4,
        Invariant::Inv6,
        Invariant::Inv7,
    ] {
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(
                count_parallel_with_threads(&g, inv, threads),
                seq,
                "{inv} with {threads} threads"
            );
        }
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    let mut rng = StdRng::seed_from_u64(515);
    let g = chung_lu(300, 250, 2000, 0.8, 0.8, &mut rng);
    let first = count_parallel_with_threads(&g, Invariant::Inv2, 4);
    for _ in 0..5 {
        assert_eq!(count_parallel_with_threads(&g, Invariant::Inv2, 4), first);
    }
    assert_eq!(first, count(&g, Invariant::Inv2));
}

#[test]
fn nested_pools_do_not_deadlock_or_diverge() {
    // Counting inside an outer rayon pool (as the report harness does).
    let g = StandIn::ArxivCondMat.generate_scaled(0.02);
    let want = count(&g, Invariant::Inv5);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .unwrap();
    let got = pool.install(|| bfly::core::count_parallel(&g, Invariant::Inv5));
    assert_eq!(got, want);
}
