//! Differential harness for the bucket-peeling engine: on every named
//! fixture and on graphs drawn from all five regime families, the
//! sequential bucket path, the chunked parallel path at several widths,
//! and the binary-heap oracles must produce bitwise-identical tip and
//! wing numbers — including inside pinned rayon pools of every size the
//! acceptance gate names (1, 2, 4, 6 threads). The k-wing execution
//! variants (queue, dense matrix, masked SpGEMM) ride along so the
//! whole peeling stack stays pinned to one definition.

use bfly::core::peel::{
    k_wing, k_wing_masked_spgemm, k_wing_matrix, tip_numbers, tip_numbers_oracle,
    tip_numbers_parallel, tip_numbers_with_chunks, wing_numbers, wing_numbers_oracle,
    wing_numbers_parallel, wing_numbers_with_chunks,
};
use bfly::core::telemetry::NoopRecorder;
use bfly::core::testkit::{arb_family_graph, arb_graph, fixture_battery};
use bfly::graph::Side;
use proptest::prelude::*;

/// Chunk widths / pool sizes the acceptance gate pins.
const WIDTHS: [usize; 4] = [1, 2, 4, 6];

#[test]
fn tip_paths_agree_on_fixture_battery() {
    for (name, g) in fixture_battery() {
        for side in [Side::V1, Side::V2] {
            let oracle = tip_numbers_oracle(&g, side);
            assert_eq!(
                tip_numbers(&g, side),
                oracle,
                "{name} {side:?}: sequential bucket path"
            );
            for chunks in WIDTHS {
                assert_eq!(
                    tip_numbers_with_chunks(&g, side, chunks, &mut NoopRecorder),
                    oracle,
                    "{name} {side:?}: chunks={chunks}"
                );
            }
        }
    }
}

#[test]
fn wing_paths_agree_on_fixture_battery() {
    for (name, g) in fixture_battery() {
        let oracle = wing_numbers_oracle(&g);
        assert_eq!(wing_numbers(&g), oracle, "{name}: sequential bucket path");
        for chunks in WIDTHS {
            assert_eq!(
                wing_numbers_with_chunks(&g, chunks, &mut NoopRecorder),
                oracle,
                "{name}: chunks={chunks}"
            );
        }
    }
}

#[test]
fn pinned_pools_never_change_numbers() {
    // The rayon-facing entry points take their chunk count from the
    // installed pool; every pool size must reproduce the single-thread
    // numbers exactly.
    for (name, g) in fixture_battery() {
        let tip_seq: Vec<Vec<u64>> = [Side::V1, Side::V2]
            .iter()
            .map(|&s| tip_numbers(&g, s))
            .collect();
        let wing_seq = wing_numbers(&g);
        for threads in WIDTHS {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let (tips, wings) = pool.install(|| {
                (
                    [Side::V1, Side::V2]
                        .iter()
                        .map(|&s| tip_numbers_parallel(&g, s))
                        .collect::<Vec<_>>(),
                    wing_numbers_parallel(&g),
                )
            });
            assert_eq!(tips, tip_seq, "{name}: tip in {threads}-thread pool");
            assert_eq!(wings, wing_seq, "{name}: wing in {threads}-thread pool");
        }
    }
}

/// Degenerate-input battery: shapes with no butterflies at all (empty
/// graph, a single edge, isolated vertices only, one empty side) plus
/// thresholds above any attainable count. Sequential, chunked, and
/// fallible paths must agree bitwise and nothing may panic.
#[test]
fn degenerate_inputs_battery() {
    use bfly::core::peel::{k_tip, k_wing, try_tip_numbers, try_wing_numbers};
    use bfly::graph::BipartiteGraph;
    let cases: Vec<(&str, BipartiteGraph)> = vec![
        ("empty", BipartiteGraph::from_edges(0, 0, &[]).unwrap()),
        (
            "single-edge",
            BipartiteGraph::from_edges(1, 1, &[(0, 0)]).unwrap(),
        ),
        (
            "all-isolated",
            BipartiteGraph::from_edges(5, 7, &[]).unwrap(),
        ),
        ("v1-empty", BipartiteGraph::from_edges(0, 4, &[]).unwrap()),
        ("v2-empty", BipartiteGraph::from_edges(4, 0, &[]).unwrap()),
        (
            "one-wedge",
            BipartiteGraph::from_edges(2, 1, &[(0, 0), (1, 0)]).unwrap(),
        ),
    ];
    for (name, g) in &cases {
        for side in [Side::V1, Side::V2] {
            let seq = tip_numbers(g, side);
            assert_eq!(seq.len(), g.nvertices(side), "{name} {side:?}");
            assert!(
                seq.iter().all(|&t| t == 0),
                "{name} {side:?}: no butterflies exist"
            );
            for chunks in WIDTHS {
                assert_eq!(
                    tip_numbers_with_chunks(g, side, chunks, &mut NoopRecorder),
                    seq,
                    "{name} {side:?}: chunks={chunks}"
                );
            }
            assert_eq!(
                try_tip_numbers(g, side).unwrap(),
                seq,
                "{name} {side:?}: fallible path"
            );
            // k above any attainable tip number peels everything.
            let r = k_tip(g, side, u64::MAX);
            assert!(r.keep.iter().all(|&b| !b), "{name} {side:?}");
            assert_eq!(r.subgraph.nedges(), 0, "{name} {side:?}");
        }
        let seq = wing_numbers(g);
        assert_eq!(seq.len(), g.nedges(), "{name}");
        assert!(seq.iter().all(|&w| w == 0), "{name}");
        for chunks in WIDTHS {
            assert_eq!(
                wing_numbers_with_chunks(g, chunks, &mut NoopRecorder),
                seq,
                "{name}: chunks={chunks}"
            );
        }
        assert_eq!(try_wing_numbers(g).unwrap(), seq, "{name}: fallible path");
        assert_eq!(k_wing(g, u64::MAX).subgraph.nedges(), 0, "{name}");
    }
    // On a graph that does have butterflies, a threshold one past the
    // maximum attained number empties it — no off-by-one at the top.
    let g = BipartiteGraph::complete(3, 3);
    let max_tip = tip_numbers(&g, Side::V1).into_iter().max().unwrap();
    assert!(max_tip > 0);
    assert!(k_tip(&g, Side::V1, max_tip).keep.iter().any(|&b| b));
    assert!(k_tip(&g, Side::V1, max_tip + 1).keep.iter().all(|&b| !b));
    let max_wing = wing_numbers(&g).into_iter().max().unwrap();
    assert!(max_wing > 0);
    assert!(k_wing(&g, max_wing).subgraph.nedges() > 0);
    assert_eq!(k_wing(&g, max_wing + 1).subgraph.nedges(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel tip numbers equal sequential on both sides, at every
    /// chunk width, on graphs from all five regime families.
    #[test]
    fn tip_parallel_matches_sequential(g in arb_family_graph(), chunks in 2usize..7) {
        for side in [Side::V1, Side::V2] {
            let seq = tip_numbers(&g, side);
            prop_assert_eq!(
                tip_numbers_with_chunks(&g, side, chunks, &mut NoopRecorder),
                seq
            );
        }
    }

    /// Parallel wing numbers equal sequential at every chunk width.
    #[test]
    fn wing_parallel_matches_sequential(g in arb_family_graph(), chunks in 2usize..7) {
        let seq = wing_numbers(&g);
        prop_assert_eq!(
            wing_numbers_with_chunks(&g, chunks, &mut NoopRecorder),
            seq
        );
    }

    /// The three k-wing execution variants keep agreeing on random
    /// graphs now that the decomposition default runs on the bucket
    /// engine (membership at k equals wing_number >= k for all three).
    #[test]
    fn k_wing_variants_agree_with_wing_numbers(g in arb_graph(), k in 1u64..6) {
        let a = k_wing(&g, k);
        let b = k_wing_matrix(&g, k);
        let c = k_wing_masked_spgemm(&g, k);
        prop_assert_eq!(&a.keep, &b.keep);
        prop_assert_eq!(&a.keep, &c.keep);
        let wn = wing_numbers(&g);
        let from_numbers: Vec<bool> = wn.iter().map(|&w| w >= k).collect();
        prop_assert_eq!(&a.keep, &from_numbers);
    }
}
