//! Resource-budgeted graceful degradation, end to end: byte caps degrade
//! the plan but never the answer, work caps refuse the run with a typed
//! error instead of thrashing, deadlines yield flagged partial results,
//! and every degradation leaves a `budget.*` fingerprint in telemetry.

use bfly::core::adaptive::plan_scratch_bytes;
use bfly::core::peel::{
    tip_numbers, tip_numbers_budgeted_recorded, wing_numbers_budgeted_recorded,
};
use bfly::core::telemetry::{InMemoryRecorder, NoopRecorder};
use bfly::core::testkit::fixture_battery;
use bfly::core::{
    count_adaptive, count_adaptive_budgeted, count_adaptive_budgeted_recorded, BflyError,
    GraphProfile, PairMatrix, ResourceBudget,
};
use bfly::graph::{BipartiteGraph, Side};

#[test]
fn unlimited_budget_reproduces_every_fixture_count() {
    let budget = ResourceBudget::unlimited();
    for (name, g) in fixture_battery() {
        let want = count_adaptive(&g).0;
        for parallel in [false, true] {
            let r = count_adaptive_budgeted(&g, parallel, &budget).unwrap();
            assert!(r.complete, "{name} parallel={parallel}");
            assert_eq!(r.value.0, want, "{name} parallel={parallel}");
        }
    }
}

#[test]
fn byte_caps_degrade_the_plan_but_not_the_count() {
    for (name, g) in fixture_battery() {
        let want = count_adaptive(&g).0;
        // The fixed-member flat sequential plan with degree ordering shed
        // is the cheapest *in-memory* shape the planner can degrade to (a
        // selected global-order member demotes to its fixed fallback
        // first); byte costs are total — resident graph plus scratch — so
        // any cap at or above resident + flat floor must still produce
        // the exact count without leaving the in-memory regime.
        let profile = GraphProfile::compute(&g);
        let mut flat = bfly::core::select_plan(&profile, false, 1);
        flat.member = bfly::core::Member::Fixed(flat.invariant);
        flat.degree_ordered = false;
        flat.mode = bfly::core::ExecMode::Flat;
        let floor = profile.resident_bytes + plan_scratch_bytes(&profile, &flat);
        let budget = ResourceBudget::unlimited().with_max_bytes(floor);
        let r = count_adaptive_budgeted(&g, true, &budget).unwrap();
        assert!(r.complete, "{name}");
        assert_eq!(r.value.0, want, "{name}: degraded count must stay exact");
        // Below the in-memory floor the planner switches to the sharded
        // tier — a *planned* mode, still exact — and only a cap no shard
        // count can satisfy is a typed refusal naming the axis.
        let budget = ResourceBudget::unlimited().with_max_bytes(floor - 1);
        match count_adaptive_budgeted(&g, true, &budget) {
            Ok(r) => {
                assert!(r.complete, "{name}");
                assert!(
                    matches!(r.value.1.mode, bfly::core::ExecMode::Sharded { .. }),
                    "{name}: sub-resident cap must select the sharded tier, got {:?}",
                    r.value.1.mode
                );
                assert_eq!(r.value.0, want, "{name}: sharded count must stay exact");
            }
            Err(BflyError::BudgetExceeded { resource, .. }) => {
                assert_eq!(resource, "bytes", "{name}")
            }
            other => panic!("{name}: expected sharded plan or bytes refusal, got {other:?}"),
        }
        match count_adaptive_budgeted(&g, true, &ResourceBudget::unlimited().with_max_bytes(16)) {
            Err(BflyError::BudgetExceeded { resource, .. }) => {
                assert_eq!(resource, "bytes", "{name}")
            }
            other => panic!("{name}: expected bytes refusal, got {other:?}"),
        }
    }
}

#[test]
fn work_caps_are_typed_refusals_with_telemetry() {
    let g = BipartiteGraph::complete(12, 12);
    let budget = ResourceBudget::unlimited().with_max_wedge_work(1);
    let mut rec = InMemoryRecorder::new();
    match count_adaptive_budgeted_recorded(&g, false, &budget, &mut rec) {
        Err(BflyError::BudgetExceeded {
            resource,
            limit,
            requested,
        }) => {
            assert_eq!(resource, "wedge_work");
            assert_eq!(limit, 1);
            assert!(requested > 1);
        }
        other => panic!("expected wedge_work refusal, got {other:?}"),
    }
    // The configured cap is on record even for refused runs.
    let rep = rec.report(vec![]);
    assert!(rep
        .gauges
        .iter()
        .any(|(n, v)| n == "budget.max_wedge_work" && *v == 1.0));
}

#[test]
fn expired_deadline_yields_flagged_partial_count() {
    // A long path graph (one vertex per stride poll) with an already
    // expired deadline: the engine must stop at a poll boundary, flag
    // the result, and record the degradation — not error, not hang.
    let n = 9000u32;
    let edges: Vec<(u32, u32)> = (0..n).flat_map(|u| [(u, u), (u, (u + 1) % n)]).collect();
    let g = BipartiteGraph::from_edges(n as usize, n as usize, &edges).unwrap();
    let budget = ResourceBudget::unlimited().with_deadline_in(std::time::Duration::from_millis(0));
    std::thread::sleep(std::time::Duration::from_millis(2));
    let mut rec = InMemoryRecorder::new();
    let r = count_adaptive_budgeted_recorded(&g, false, &budget, &mut rec).unwrap();
    assert!(!r.complete, "deadline in the past must truncate");
    // Truncated counts are exact lower bounds over the processed prefix.
    assert!(r.value.0 <= count_adaptive(&g).0);
    let rep = rec.report(vec![]);
    assert!(rep
        .gauges
        .iter()
        .any(|(n, v)| n == "budget.degraded" && *v == 3.0));
}

#[test]
fn budgeted_peel_paths_match_unbudgeted_numbers() {
    for (name, g) in fixture_battery() {
        let budget = ResourceBudget::unlimited();
        for side in [Side::V1, Side::V2] {
            let r = tip_numbers_budgeted_recorded(&g, side, &budget, &mut NoopRecorder).unwrap();
            assert!(r.complete, "{name} {side:?}");
            assert_eq!(r.value, tip_numbers(&g, side), "{name} {side:?}");
        }
        let r = wing_numbers_budgeted_recorded(&g, &budget, &mut NoopRecorder).unwrap();
        assert!(r.complete, "{name}");
        assert_eq!(r.value, bfly::core::peel::wing_numbers(&g), "{name}");
        // A one-byte cap forces the chunk fallback; numbers still exact
        // unless the budget refuses outright, which must be typed.
        let tiny = ResourceBudget::unlimited().with_max_bytes(1);
        match wing_numbers_budgeted_recorded(&g, &tiny, &mut NoopRecorder) {
            Ok(r) => assert_eq!(r.value, bfly::core::peel::wing_numbers(&g), "{name}"),
            Err(BflyError::BudgetExceeded { .. }) => {}
            Err(other) => panic!("{name}: unexpected {other:?}"),
        }
    }
}

#[test]
fn pair_matrix_streaming_fallback_is_exact() {
    for (name, g) in fixture_battery() {
        for side in [Side::V1, Side::V2] {
            let dense = PairMatrix::build(&g, side);
            // A cap at exactly the streaming floor forces the streaming
            // path (the dense estimate is larger on every fixture); a cap
            // below it is a typed refusal carrying the exact floor bytes,
            // covered by the pair_matrix unit tests.
            let tiny = ResourceBudget::unlimited()
                .with_max_bytes(PairMatrix::streaming_build_bytes(&g, side));
            let streamed = PairMatrix::try_build(&g, side, &tiny).unwrap();
            assert_eq!(
                streamed.total(),
                dense.total(),
                "{name} {side:?}: streaming fallback total"
            );
            assert_eq!(
                streamed.top_pairs(5),
                dense.top_pairs(5),
                "{name} {side:?}: streaming fallback top pairs"
            );
        }
    }
}
