//! Property-based tests (proptest) over arbitrary bipartite graphs.
//!
//! Graphs come from the shared `bfly_core::testkit` strategies (arbitrary
//! edge lists over bounded vertex sets); the properties are the algebraic
//! identities the paper's derivation rests on, checked end to end on the
//! real implementations.

use bfly::core::baseline::{count_hash_aggregation, count_vertex_priority};
use bfly::core::edge_support::{edge_supports, total_from_supports};
use bfly::core::peel::{k_tip, k_wing};
use bfly::core::testkit::{arb_graph, MAX_SIDE};
use bfly::core::vertex_counts::{butterflies_per_vertex, butterflies_per_vertex_algebraic};
use bfly::core::{count, count_brute_force, count_via_spgemm, Invariant};
use bfly::graph::{BipartiteGraph, Side};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All eight invariants equal the brute-force definition.
    #[test]
    fn family_agrees_with_definition(g in arb_graph()) {
        let want = count_brute_force(&g);
        for inv in Invariant::ALL {
            prop_assert_eq!(count(&g, inv), want);
        }
    }

    /// The linear-algebra mid-point and the baselines agree too.
    #[test]
    fn spec_and_baselines_agree(g in arb_graph()) {
        let want = count_brute_force(&g);
        prop_assert_eq!(count_via_spgemm(&g), want);
        prop_assert_eq!(count_hash_aggregation(&g), want);
        prop_assert_eq!(count_vertex_priority(&g), want);
    }

    /// Ξ(A) = Ξ(Aᵀ): the count cannot depend on which side is called V1.
    #[test]
    fn transpose_invariance(g in arb_graph()) {
        prop_assert_eq!(count_brute_force(&g.swap_sides()), count_brute_force(&g));
    }

    /// Butterflies only ever appear when an edge is added, never vanish.
    #[test]
    fn edge_monotonicity(g in arb_graph(), u in 0..MAX_SIDE, v in 0..MAX_SIDE) {
        let u = u % g.nv1() as u32;
        let v = v % g.nv2() as u32;
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        edges.push((u, v));
        let g2 = BipartiteGraph::from_edges(g.nv1(), g.nv2(), &edges).unwrap();
        prop_assert!(count_brute_force(&g2) >= count_brute_force(&g));
    }

    /// Disjoint union adds counts exactly.
    #[test]
    fn disjoint_union_additivity(a in arb_graph(), b in arb_graph()) {
        let u = a.disjoint_union(&b);
        prop_assert_eq!(
            count_brute_force(&u),
            count_brute_force(&a) + count_brute_force(&b)
        );
    }

    /// Σ_u b_u = 2Ξ on both sides, and the algebraic per-vertex counts
    /// match the wedge-expansion ones.
    #[test]
    fn vertex_count_identities(g in arb_graph()) {
        let xi = count_brute_force(&g);
        for side in [Side::V1, Side::V2] {
            let b = butterflies_per_vertex(&g, side);
            prop_assert_eq!(b.iter().sum::<u64>(), 2 * xi);
            prop_assert_eq!(&b, &butterflies_per_vertex_algebraic(&g, side));
        }
    }

    /// Σ_e supp(e) = 4Ξ.
    #[test]
    fn edge_support_identity(g in arb_graph()) {
        let s = edge_supports(&g);
        prop_assert_eq!(s.iter().sum::<u64>(), 4 * count_brute_force(&g));
        if !s.is_empty() {
            prop_assert_eq!(total_from_supports(&s), count_brute_force(&g));
        }
    }

    /// k-tip output satisfies its definition and nests with k.
    #[test]
    fn tip_fixed_point_and_nesting(g in arb_graph(), k in 1u64..6) {
        let r = k_tip(&g, Side::V1, k);
        let scores = butterflies_per_vertex(&r.subgraph, Side::V1);
        for (i, &keep) in r.keep.iter().enumerate() {
            if keep {
                prop_assert!(scores[i] >= k);
            }
        }
        let r_higher = k_tip(&g, Side::V1, k + 1);
        for i in 0..g.nv1() {
            if r_higher.keep[i] {
                prop_assert!(r.keep[i]);
            }
        }
    }

    /// k-wing output satisfies its definition and nests with k.
    #[test]
    fn wing_fixed_point_and_nesting(g in arb_graph(), k in 1u64..5) {
        let r = k_wing(&g, k);
        let s = edge_supports(&r.subgraph);
        for &sup in &s {
            prop_assert!(sup >= k);
        }
        let r_higher = k_wing(&g, k + 1);
        for i in 0..g.nedges() {
            if r_higher.keep[i] {
                prop_assert!(r.keep[i]);
            }
        }
    }

    /// Duplicated edges change nothing (simple-graph semantics).
    #[test]
    fn duplicate_edges_are_idempotent(g in arb_graph()) {
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        let doubled: Vec<(u32, u32)> =
            edges.iter().copied().chain(edges.iter().copied()).collect();
        edges.sort_unstable();
        let g2 = BipartiteGraph::from_edges(g.nv1(), g.nv2(), &doubled).unwrap();
        prop_assert_eq!(&g2, &g);
        prop_assert_eq!(count_brute_force(&g2), count_brute_force(&g));
    }
}
