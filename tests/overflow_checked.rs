//! Overflow-checked counting: [`CheckedAccum`] must be exact against a
//! `u128` reference in every build profile (CI runs this file in debug,
//! release, and release with `-C overflow-checks=on`; wrapped arithmetic
//! in any of them diverges from the reference and fails here), and the
//! `try_*` entry points must agree with the infallible counters on
//! graphs that fit comfortably in `u64`.

use bfly::core::telemetry::NoopRecorder;
use bfly::core::testkit::{arb_family_graph, fixture_battery};
use bfly::core::{try_count, try_count_adaptive, BflyError, Invariant};
use bfly::sparse::CheckedAccum;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sums that straddle `u64::MAX`: the accumulator value equals the
    /// u128 reference sum exactly, and `finish` errs iff it no longer
    /// fits. Identical behaviour in debug and release is the point —
    /// an unchecked `+` would wrap in release and diverge.
    #[test]
    fn checked_accum_matches_u128_reference(
        base_shift in 0u32..8,
        terms in proptest::collection::vec(0u64..=u64::MAX, 0..24),
    ) {
        // Bias the starting point toward the overflow boundary so the
        // spill path is exercised, not just the fast u64 lane.
        let base = u64::MAX >> base_shift;
        let mut acc = CheckedAccum::with_base(base);
        let mut reference = base as u128;
        for &t in &terms {
            acc.add(t);
            reference += t as u128;
        }
        prop_assert_eq!(acc.value(), reference);
        prop_assert_eq!(acc.fits_u64(), reference <= u64::MAX as u128);
        match acc.finish() {
            Ok(v) => {
                prop_assert!(reference <= u64::MAX as u128);
                prop_assert_eq!(v as u128, reference);
            }
            Err(partial) => {
                prop_assert!(reference > u64::MAX as u128);
                // The carried partial is the exact total, never wrapped.
                prop_assert_eq!(partial, reference);
            }
        }
    }

    /// Merging split accumulators equals one accumulator over the
    /// concatenation — the parallel reduction cannot change totals.
    #[test]
    fn checked_accum_merge_is_exact(
        terms in proptest::collection::vec(0u64..=u64::MAX, 0..32),
        split in 0usize..33,
    ) {
        let split = split.min(terms.len());
        let mut whole = CheckedAccum::new();
        for &t in &terms {
            whole.add(t);
        }
        let mut left = CheckedAccum::new();
        for &t in &terms[..split] {
            left.add(t);
        }
        let mut right = CheckedAccum::new();
        for &t in &terms[split..] {
            right.add(t);
        }
        left.merge(right);
        prop_assert_eq!(left.value(), whole.value());
    }

    /// On ordinary graphs the fallible counters return exactly what the
    /// infallible ones do, for every invariant.
    #[test]
    fn try_count_agrees_with_count(g in arb_family_graph()) {
        let want = bfly::core::count_auto(&g).0;
        for inv in Invariant::ALL {
            prop_assert_eq!(try_count(&g, inv).unwrap(), want, "{}", inv);
        }
        prop_assert_eq!(try_count_adaptive(&g).unwrap().0, want);
    }
}

#[test]
fn try_count_agrees_on_fixture_battery() {
    for (name, g) in fixture_battery() {
        let want = bfly::core::count_auto(&g).0;
        for inv in Invariant::ALL {
            assert_eq!(try_count(&g, inv).unwrap(), want, "{name}: {inv}");
        }
        assert_eq!(try_count_adaptive(&g).unwrap().0, want, "{name}");
        assert_eq!(
            bfly::core::family::try_count_recorded(&g, Invariant::Inv2, &mut NoopRecorder).unwrap(),
            want,
            "{name}"
        );
    }
}

#[test]
fn overflow_error_carries_exact_partial_total() {
    let mut acc = CheckedAccum::with_base(u64::MAX);
    acc.add(41);
    acc.add(1);
    match acc.finish() {
        Err(partial) => assert_eq!(partial, u64::MAX as u128 + 42),
        Ok(v) => panic!("must overflow, got {v}"),
    }
    // And the taxonomy keeps it intact end to end.
    let e = BflyError::CountOverflow {
        partial: u64::MAX as u128 + 42,
        context: "test",
    };
    let msg = e.to_string();
    assert!(msg.contains(&(u64::MAX as u128 + 42).to_string()), "{msg}");
}
