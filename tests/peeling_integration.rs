//! Integration: the peeling stack (per-vertex counts, per-edge supports,
//! k-tip, k-wing, decompositions) validated against the definitions on
//! multi-crate pipelines — generated graphs, stand-ins, and I/O round
//! trips.

use bfly::core::edge_support::{edge_supports, total_from_supports};
use bfly::core::peel::{
    k_tip, k_tip_lookahead, k_tip_matrix, k_wing, k_wing_matrix, tip_numbers, wing_numbers,
};
use bfly::core::vertex_counts::butterflies_per_vertex;
use bfly::core::{count_via_spgemm, Invariant};
use bfly::graph::generators::{chung_lu, uniform_exact, with_planted_biclique};
use bfly::graph::{BipartiteGraph, Side, StandIn};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_graph(seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = uniform_exact(60, 60, 150, &mut rng);
    with_planted_biclique(&base, &[0, 1, 2, 3, 4], &[0, 1, 2, 3, 4, 5])
}

#[test]
fn tip_definition_holds_on_every_k() {
    let g = test_graph(1);
    for side in [Side::V1, Side::V2] {
        for k in [1u64, 3, 10, 50, 200] {
            let r = k_tip(&g, side, k);
            let scores = butterflies_per_vertex(&r.subgraph, side);
            for (i, &keep) in r.keep.iter().enumerate() {
                if keep {
                    assert!(scores[i] >= k, "side {side:?} k={k} vertex {i}");
                } else {
                    // Removed vertices have no edges left in the subgraph.
                    let deg = match side {
                        Side::V1 => r.subgraph.deg_v1(i),
                        Side::V2 => r.subgraph.deg_v2(i),
                    };
                    assert_eq!(deg, 0);
                }
            }
        }
    }
}

#[test]
fn tip_variants_agree_on_stand_in() {
    // Cross-crate: KONECT stand-in (graph crate) through peeling (core).
    let g = StandIn::ArxivCondMat.generate_scaled(0.03);
    for k in [1u64, 2, 5] {
        let a = k_tip(&g, Side::V1, k);
        let b = k_tip_matrix(&g, Side::V1, k);
        let c = k_tip_lookahead(&g, Side::V1, k);
        assert_eq!(a.keep, b.keep, "k={k}");
        assert_eq!(a.keep, c.keep, "k={k}");
    }
}

#[test]
fn wing_definition_holds_on_every_k() {
    let g = test_graph(2);
    for k in [1u64, 2, 5, 12] {
        let r = k_wing(&g, k);
        let m = k_wing_matrix(&g, k);
        assert_eq!(r.keep, m.keep, "k={k}");
        let supports = edge_supports(&r.subgraph);
        for &s in &supports {
            assert!(s >= k, "k={k}: surviving edge support {s}");
        }
    }
}

#[test]
fn supports_aggregate_to_total_count() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..4 {
        let g = chung_lu(50, 40, 220, 0.7, 0.7, &mut rng);
        let supports = edge_supports(&g);
        assert_eq!(total_from_supports(&supports), count_via_spgemm(&g));
    }
}

#[test]
fn decompositions_are_complete_hierarchies() {
    let g = test_graph(4);
    // Tip numbers: membership in every k-tip equals tip_number >= k, over
    // the whole range of observed values.
    let tn = tip_numbers(&g, Side::V1);
    let max = tn.iter().max().copied().unwrap();
    for k in [1, max / 2, max] {
        if k == 0 {
            continue;
        }
        let r = k_tip(&g, Side::V1, k);
        for (i, &keep) in r.keep.iter().enumerate() {
            assert_eq!(keep, tn[i] >= k, "tip k={k} vertex {i} (tn={})", tn[i]);
        }
    }
    // Wing numbers likewise.
    let wn = wing_numbers(&g);
    let maxw = wn.iter().max().copied().unwrap();
    for k in [1, maxw / 2, maxw] {
        if k == 0 {
            continue;
        }
        let r = k_wing(&g, k);
        for (i, &keep) in r.keep.iter().enumerate() {
            assert_eq!(keep, wn[i] >= k, "wing k={k} edge {i} (wn={})", wn[i]);
        }
    }
}

#[test]
fn peeling_the_whole_graph_reports_empty_fixed_point() {
    let g = test_graph(5);
    let huge = 1_000_000_000u64;
    let t = k_tip(&g, Side::V1, huge);
    assert!(t.keep.iter().all(|&b| !b));
    assert_eq!(
        count_via_spgemm(&t.subgraph),
        0,
        "fully peeled graph has no butterflies"
    );
    let w = k_wing(&g, huge);
    assert_eq!(w.subgraph.nedges(), 0);
}

#[test]
fn counting_inside_peeled_subgraph_is_consistent() {
    // The k-wing subgraph's own butterfly count equals what the family
    // computes on it — peeling output feeds back into counting cleanly.
    let g = test_graph(6);
    let r = k_wing(&g, 3);
    let via_family: u64 = bfly::core::count(&r.subgraph, Invariant::Inv2);
    assert_eq!(via_family, count_via_spgemm(&r.subgraph));
    let supports = edge_supports(&r.subgraph);
    assert_eq!(total_from_supports(&supports), via_family);
}
