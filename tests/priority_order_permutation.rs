//! Permutation invariance and exact-work pins for the global-order
//! kernels. The vertex-priority order ranks degree-descending with ties
//! broken by side and id, so relabelling a side permutes the tie-breaks —
//! a "priority-breaking" relabel. Counting must not care: totals,
//! per-vertex counts, and per-edge supports all transport through the
//! isomorphism (extending `degree_order_permutation.rs` to the new
//! kernels).
//!
//! The work pins are deliberately two-tier, because the relationship
//! between priority work and the best fixed side is regime-dependent
//! (measured here, not assumed):
//!
//! * **exactness, everywhere** — the kernels' `wedges_expanded` equals
//!   the closed-form `priority_wedge_work` total on every fixture, which
//!   is what keeps `Plan::forecast()` exact;
//! * **floor, where it holds** — on the strongly skewed fixtures the
//!   priority total is strictly below the best fixed invariant's work;
//!   on near-uniform fixtures it can exceed it (up to ~1.3× on the
//!   generators), and the pin there is that `select_plan` never chooses
//!   a global-order member at a work regression.

use bfly::core::adaptive::{select_plan, GraphProfile, Member};
use bfly::core::edge_support::edge_supports;
use bfly::core::family::{
    butterflies_per_vertex_priority, count_priority, count_priority_recorded, count_ranked,
    count_ranked_recorded, edge_supports_priority, priority_wedge_work,
};
use bfly::core::telemetry::{Counter, InMemoryRecorder};
use bfly::core::testkit::{arb_family_graph, fixture_battery};
use bfly::core::vertex_counts::butterflies_per_vertex;
use bfly::core::{count_brute_force, PRIORITY_MIN_WORK};
use bfly::graph::ordering::{invert_permutation, relabel};
use bfly::graph::{BipartiteGraph, Side};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Fisher–Yates permutation of `0..n` (the vendored rand has no shuffle).
fn random_permutation(n: usize, rng: &mut StdRng) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=(i as u32)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Every global-order kernel output transports through `relabel(g, side,
/// perm)` with `perm[new] = old`.
fn assert_priority_invariant(g: &BipartiteGraph, side: Side, perm: &[u32], label: &str) {
    let h = relabel(g, side, perm);
    let want = count_brute_force(g);
    assert_eq!(count_priority(&h), want, "{label}: priority total");
    assert_eq!(count_ranked(&h), want, "{label}: ranked total");

    // Per-vertex: h's vertex `new` is g's vertex `perm[new]` on the
    // relabelled side, untouched elsewhere.
    let inv_perm = invert_permutation(perm);
    let (g1, g2) = butterflies_per_vertex_priority(g);
    let (h1, h2) = butterflies_per_vertex_priority(&h);
    let (relab_g, relab_h, fixed_g, fixed_h) = match side {
        Side::V1 => (&g1, &h1, &g2, &h2),
        Side::V2 => (&g2, &h2, &g1, &h1),
    };
    for old in 0..relab_g.len() {
        assert_eq!(
            relab_h[inv_perm[old] as usize], relab_g[old],
            "{label}: per-vertex count of old vertex {old}"
        );
    }
    assert_eq!(fixed_h, fixed_g, "{label}: untouched side");

    // Per-edge supports transport along the edge correspondence.
    let s_g = edge_supports_priority(g);
    let s_h = edge_supports_priority(&h);
    let index_g: HashMap<(u32, u32), usize> = g.edges().enumerate().map(|(i, e)| (e, i)).collect();
    for (i_h, (a, b)) in h.edges().enumerate() {
        let orig = match side {
            Side::V1 => (perm[a as usize], b),
            Side::V2 => (a, perm[b as usize]),
        };
        let i_g = *index_g
            .get(&orig)
            .unwrap_or_else(|| panic!("{label}: edge {orig:?} missing from original"));
        assert_eq!(s_h[i_h], s_g[i_g], "{label}: support of edge {orig:?}");
    }
}

#[test]
fn priority_breaking_relabels_preserve_everything_on_fixtures() {
    for (name, g) in fixture_battery() {
        let mut rng = StdRng::seed_from_u64(2024);
        for side in [Side::V1, Side::V2] {
            let n = match side {
                Side::V1 => g.nv1(),
                Side::V2 => g.nv2(),
            };
            for trial in 0..2 {
                let perm = random_permutation(n, &mut rng);
                assert_priority_invariant(&g, side, &perm, &format!("{name}/{side:?}/{trial}"));
            }
        }
    }
}

#[test]
fn priority_attributions_match_oracles_on_fixtures() {
    for (name, g) in fixture_battery() {
        let (p1, p2) = butterflies_per_vertex_priority(&g);
        assert_eq!(p1, butterflies_per_vertex(&g, Side::V1), "{name}: V1");
        assert_eq!(p2, butterflies_per_vertex(&g, Side::V2), "{name}: V2");
        assert_eq!(
            edge_supports_priority(&g),
            edge_supports(&g),
            "{name}: edge supports"
        );
    }
}

#[test]
fn wedge_work_counter_is_exact_on_every_fixture() {
    // The forecast identity: both kernels expand exactly the closed-form
    // priority wedge total — nothing more (no overshoot past fraction
    // 1.0) and nothing less (the forecast completes).
    for (name, g) in fixture_battery() {
        let want = priority_wedge_work(&g);
        let mut rec = InMemoryRecorder::new();
        count_priority_recorded(&g, &mut rec);
        assert_eq!(
            rec.counter(Counter::WedgesExpanded),
            want,
            "{name}: priority wedges_expanded"
        );
        let mut rec = InMemoryRecorder::new();
        count_ranked_recorded(&g, &mut rec);
        assert_eq!(
            rec.counter(Counter::WedgesExpanded),
            want,
            "{name}: ranked wedges_expanded"
        );
    }
}

#[test]
fn priority_work_beats_fixed_floor_exactly_where_selected() {
    // The honest two-tier floor pin. Strongly skewed fixtures: priority
    // work strictly undercuts the best fixed invariant. Everywhere else:
    // whenever the planner *does* pick a global-order member, its
    // `est_work` is below the fixed floor — i.e. the planner never
    // schedules priority at a work regression, even on the near-uniform
    // fixtures where the unconditional bound fails.
    let strictly_better = ["skewed-0.7", "skewed-1.0"];
    for (name, g) in fixture_battery() {
        let p = GraphProfile::compute(&g);
        let best_fixed = p.wedges_v1.min(p.wedges_v2);
        assert_eq!(p.wedges_priority, priority_wedge_work(&g), "{name}");
        if strictly_better.contains(&name.as_str()) {
            assert!(
                p.wedges_priority < best_fixed,
                "{name}: priority {} not below fixed floor {best_fixed}",
                p.wedges_priority
            );
        }
        for (parallel, workers) in [(false, 0), (true, 4)] {
            let plan = select_plan(&p, parallel, workers);
            if !matches!(plan.member, Member::Fixed(_)) {
                assert!(
                    plan.est_work < best_fixed && best_fixed >= PRIORITY_MIN_WORK,
                    "{name}: global-order member selected at a work regression \
                     (est {} vs floor {best_fixed})",
                    plan.est_work
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Priority-breaking relabels across all generator regimes: totals
    /// survive arbitrary id shuffles of either side.
    #[test]
    fn priority_relabel_is_invariant_on_generated_graphs(
        g in arb_family_graph(),
        seed in 0u64..u64::MAX,
    ) {
        let want = count_brute_force(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        for side in [Side::V1, Side::V2] {
            let n = match side { Side::V1 => g.nv1(), Side::V2 => g.nv2() };
            let perm = random_permutation(n, &mut rng);
            let h = relabel(&g, side, &perm);
            prop_assert_eq!(count_priority(&h), want);
            prop_assert_eq!(count_ranked(&h), want);
        }
        // The exact-work identity holds on every generated graph too.
        let mut rec = InMemoryRecorder::new();
        count_priority_recorded(&g, &mut rec);
        prop_assert_eq!(rec.counter(Counter::WedgesExpanded), priority_wedge_work(&g));
    }
}
