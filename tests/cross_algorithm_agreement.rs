//! Integration: every counting algorithm in the workspace — the eight
//! derived invariants (sequential, parallel, blocked), the two
//! global-order kernels (vertex-priority and ranked aggregation), the
//! three specification counters, and the two exact baselines — must agree
//! on the same graph, across a spread of generator regimes and edge cases.

use bfly::core::adaptive::{count_adaptive, count_adaptive_parallel};
use bfly::core::baseline::{count_hash_aggregation, count_vertex_priority};
use bfly::core::edge_support::edge_supports;
use bfly::core::family::{
    butterflies_per_vertex_priority, count_blocked, count_priority, count_priority_parallel,
    count_ranked, count_ranked_parallel, edge_supports_priority,
};
use bfly::core::testkit::fixture_battery;
use bfly::core::vertex_counts::butterflies_per_vertex;
use bfly::core::{
    count, count_brute_force, count_dense_formula, count_parallel, count_via_spgemm, Invariant,
};
use bfly::graph::generators::{chung_lu, gnp, uniform_exact, with_planted_biclique};
use bfly::graph::{BipartiteGraph, Side};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run the full agreement battery on one graph.
fn assert_all_agree(g: &BipartiteGraph, label: &str) {
    let want = count_via_spgemm(g);
    assert_eq!(count_dense_formula(g), want, "{label}: dense formula");
    assert_eq!(count_brute_force(g), want, "{label}: brute force");
    for inv in Invariant::ALL {
        assert_eq!(count(g, inv), want, "{label}: {inv} sequential");
        assert_eq!(count_parallel(g, inv), want, "{label}: {inv} parallel");
    }
    for b in [1usize, 7, 128] {
        assert_eq!(
            count_blocked(g, Side::V2, b),
            want,
            "{label}: blocked V2/{b}"
        );
        assert_eq!(
            count_blocked(g, Side::V1, b),
            want,
            "{label}: blocked V1/{b}"
        );
    }
    assert_eq!(count_hash_aggregation(g), want, "{label}: hash baseline");
    assert_eq!(count_vertex_priority(g), want, "{label}: vertex priority");
    // Global-order kernels: totals sequential and at 1/2/4 chunks…
    assert_eq!(count_priority(g), want, "{label}: priority sequential");
    assert_eq!(count_ranked(g), want, "{label}: ranked sequential");
    for chunks in [1usize, 2, 4] {
        assert_eq!(
            count_priority_parallel(g, chunks),
            want,
            "{label}: priority parallel/{chunks}"
        );
        assert_eq!(
            count_ranked_parallel(g, chunks),
            want,
            "{label}: ranked parallel/{chunks}"
        );
    }
    // …and the per-vertex / per-edge attributions against the oracles.
    let (pv1, pv2) = butterflies_per_vertex_priority(g);
    assert_eq!(
        pv1,
        butterflies_per_vertex(g, Side::V1),
        "{label}: priority per-vertex V1"
    );
    assert_eq!(
        pv2,
        butterflies_per_vertex(g, Side::V2),
        "{label}: priority per-vertex V2"
    );
    assert_eq!(
        edge_supports_priority(g),
        edge_supports(g),
        "{label}: priority per-edge supports"
    );
    let (xi, plan) = count_adaptive(g);
    assert_eq!(xi, want, "{label}: adaptive (plan {plan:?})");
    let (xi_par, plan_par) = count_adaptive_parallel(g);
    assert_eq!(
        xi_par, want,
        "{label}: adaptive parallel (plan {plan_par:?})"
    );
}

#[test]
fn agreement_on_testkit_fixture_battery() {
    // The shared fixture battery (testkit) covers uniform, skewed,
    // star-heavy, near-empty, biclique, and degenerate shapes.
    for (name, g) in fixture_battery() {
        assert_all_agree(&g, &name);
    }
}

#[test]
fn agreement_on_uniform_graphs() {
    let mut rng = StdRng::seed_from_u64(1001);
    for (m, n, e) in [(20, 20, 80), (50, 10, 150), (10, 60, 200), (35, 35, 0)] {
        let g = uniform_exact(m, n, e, &mut rng);
        assert_all_agree(&g, &format!("uniform {m}x{n}x{e}"));
    }
}

#[test]
fn agreement_on_skewed_graphs() {
    let mut rng = StdRng::seed_from_u64(1002);
    for exp in [0.3, 0.7, 1.0] {
        let g = chung_lu(60, 45, 300, exp, exp, &mut rng);
        assert_all_agree(&g, &format!("chung-lu exp={exp}"));
    }
}

#[test]
fn agreement_on_gnp_graphs() {
    let mut rng = StdRng::seed_from_u64(1003);
    for p in [0.01, 0.1, 0.5] {
        let g = gnp(40, 30, p, &mut rng);
        assert_all_agree(&g, &format!("gnp p={p}"));
    }
}

#[test]
fn agreement_on_preferential_attachment_graphs() {
    use bfly::graph::generators::preferential_attachment;
    let mut rng = StdRng::seed_from_u64(1008);
    let g = preferential_attachment(45, 40, 3, &mut rng);
    assert_all_agree(&g, "preferential attachment");
}

#[test]
fn agreement_on_planted_structures() {
    let mut rng = StdRng::seed_from_u64(1004);
    let base = uniform_exact(40, 40, 100, &mut rng);
    let g = with_planted_biclique(&base, &[0, 1, 2, 3, 4, 5], &[10, 11, 12, 13]);
    assert_all_agree(&g, "planted biclique");
}

#[test]
fn agreement_on_degenerate_shapes() {
    // Complete, empty, single row/column, perfect matching, double star.
    assert_all_agree(&BipartiteGraph::complete(6, 6), "K_{6,6}");
    assert_all_agree(&BipartiteGraph::empty(10, 10), "empty");
    assert_all_agree(&BipartiteGraph::complete(1, 20), "single V1 vertex");
    assert_all_agree(&BipartiteGraph::complete(20, 1), "single V2 vertex");
    let matching: Vec<(u32, u32)> = (0..15).map(|i| (i, i)).collect();
    assert_all_agree(
        &BipartiteGraph::from_edges(15, 15, &matching).unwrap(),
        "perfect matching",
    );
    // Two hubs sharing all leaves: C(n,2) butterflies per leaf pair… a
    // K_{2,n}: C(n,2) butterflies total.
    let mut edges = Vec::new();
    for v in 0..12u32 {
        edges.push((0, v));
        edges.push((1, v));
    }
    let k2n = BipartiteGraph::from_edges(2, 12, &edges).unwrap();
    assert_eq!(count_via_spgemm(&k2n), 66);
    assert_all_agree(&k2n, "K_{2,12}");
}

#[test]
fn transpose_symmetry_across_algorithms() {
    let mut rng = StdRng::seed_from_u64(1005);
    for _ in 0..5 {
        let g = chung_lu(30, 50, 220, 0.6, 0.8, &mut rng);
        let t = g.swap_sides();
        let want = count_via_spgemm(&g);
        assert_eq!(count_via_spgemm(&t), want);
        for inv in Invariant::ALL {
            assert_eq!(count(&t, inv), want, "{inv} on transpose");
        }
    }
}

#[test]
fn butterfly_core_reduction_preserves_counts() {
    // The (2,2)-core drops only vertices that cannot be in any butterfly,
    // so every counter returns the same total on the reduced graph.
    use bfly::graph::butterfly_core;
    let mut rng = StdRng::seed_from_u64(1007);
    for _ in 0..4 {
        let g = chung_lu(60, 50, 180, 0.7, 0.7, &mut rng);
        let core = butterfly_core(&g);
        assert!(core.subgraph.nedges() <= g.nedges());
        let full = count_via_spgemm(&g);
        assert_eq!(count_via_spgemm(&core.subgraph), full);
        for inv in [Invariant::Inv2, Invariant::Inv7] {
            assert_eq!(count(&core.subgraph, inv), full);
        }
    }
}

#[test]
fn loop_invariants_machine_checked_end_to_end() {
    // The executable FLAME worksheet: every derived algorithm maintains
    // its loop invariant at every iteration on a cross-crate pipeline
    // graph (stand-in generator → verifier).
    use bfly::core::family::verify_loop_invariant;
    let g = bfly::graph::StandIn::ArxivCondMat.generate_scaled(0.002);
    for inv in Invariant::ALL {
        verify_loop_invariant(&g, inv).unwrap();
    }
}

#[test]
fn counts_scale_with_planted_density() {
    // Adding a biclique strictly increases the count by at least the
    // block's own butterflies.
    let mut rng = StdRng::seed_from_u64(1006);
    let base = uniform_exact(50, 50, 120, &mut rng);
    let before = count_via_spgemm(&base);
    let g = with_planted_biclique(&base, &[0, 1, 2, 3], &[0, 1, 2, 3]);
    let after = count_via_spgemm(&g);
    assert!(after >= before + 36 - 36); // block contributes C(4,2)² = 36 minus overlaps
    assert!(after > before);
}
