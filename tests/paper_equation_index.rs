//! Equation index: every numbered equation in the paper, as a test.
//!
//! Each test names the equation it executes and checks it against an
//! independent computation, so this file doubles as a map from the
//! paper's mathematics to the code that implements it.
//!
//! | Eq. | Statement | Test |
//! |-----|-----------|------|
//! | (1) | `Ξ_G = Σ_{i<j} γ_ij`, `C = ½B∘(B−J)` | `eq1_upper_triangle_of_c` |
//! | (2) | `Ξ_G = ½Σγ − ½Γ(C)` | `eq2_symmetry_halving` |
//! | (3) | `Σ(X∘Y) = Γ(XYᵀ)` | `eq3_hadamard_trace_identity` |
//! | (4)/(7) | the four-trace specification | `eq4_7_trace_specification` |
//! | (5)/(6) | wedge totals | `eq5_6_wedge_count` |
//! | (8)/(9)/(10) | category decomposition | `eq8_9_10_categories` |
//! | (15)–(18) | the derived update | `eq15_18_update_statement` |
//! | (19)/(20) | per-vertex counts & mask | `eq19_20_tip_scores` |
//! | (21)/(22) | tip masking | `eq21_22_tip_masking` |
//! | (23)/(24) | edge support, combinatorial | `eq23_24_edge_support` |
//! | (25) | the `S_w` support matrix | `eq25_support_matrix` |
//! | (26)/(27) | wing masking | `eq26_27_wing_masking` |

use bfly::core::edge_support::{edge_supports, edge_supports_algebraic, support_matrix};
use bfly::core::family::{count_literal, invariant_specified_value, Invariant};
use bfly::core::partitioned::{count_categories, count_dense_partitioned};
use bfly::core::peel::{k_tip, k_tip_matrix, k_wing, k_wing_matrix};
use bfly::core::vertex_counts::{butterflies_per_vertex, eq19_diagonal_times4};
use bfly::core::{count, count_brute_force, count_dense_formula};
use bfly::graph::generators::uniform_exact;
use bfly::graph::{BipartiteGraph, Side};
use bfly::sparse::ops::{frobenius_inner, spgemm};
use bfly::sparse::{choose2, CsrMatrix, DenseMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn g() -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(1618);
    uniform_exact(15, 12, 70, &mut rng)
}

/// B = A·Aᵀ over u64.
fn wedge_matrix(g: &BipartiteGraph) -> CsrMatrix<u64> {
    let a: CsrMatrix<u64> = g.to_csr();
    spgemm(&a, &a.transpose()).unwrap()
}

#[test]
fn eq1_upper_triangle_of_c() {
    // C = ½·B∘(B−J); Ξ_G = Σ_{i<j} C_ij.
    let g = g();
    let b = wedge_matrix(&g).to_dense();
    let m = b.nrows();
    let j = DenseMatrix::<u64>::ones(m, m);
    // Work in i128 to allow B − J below the diagonal of small entries.
    let mut xi = 0i128;
    for r in 0..m {
        for c in (r + 1)..m {
            let beta = b.get(r, c) as i128;
            let jv = j.get(r, c) as i128;
            xi += beta * (beta - jv) / 2;
        }
    }
    assert_eq!(xi as u64, count_brute_force(&g));
}

#[test]
fn eq2_symmetry_halving() {
    // Ξ_G = ½·Σ_ij γ_ij − ½·Γ(C): the full sum halved minus the diagonal.
    let g = g();
    let b = wedge_matrix(&g).to_dense();
    let m = b.nrows();
    let mut full = 0u64;
    let mut diag = 0u64;
    for r in 0..m {
        for c in 0..m {
            let gamma = choose2(b.get(r, c));
            full += gamma;
            if r == c {
                diag += gamma;
            }
        }
    }
    assert_eq!((full - diag) / 2, count_brute_force(&g));
}

#[test]
fn eq3_hadamard_trace_identity() {
    // Σ_ij (X ∘ Y)_ij = Γ(X·Yᵀ) on graph-shaped operands.
    let g = g();
    let x: CsrMatrix<u64> = g.to_csr();
    let y = wedge_matrix(&g); // wrong shape for ∘ with x — use two Bs
    let b = y.clone();
    let lhs = frobenius_inner(&y, &b).unwrap();
    let rhs = spgemm(&y, &b.transpose()).unwrap().trace();
    assert_eq!(lhs, rhs);
    // And with rectangular operands (A ∘ A):
    let lhs = frobenius_inner(&x, &x).unwrap();
    let rhs = spgemm(&x, &x.transpose()).unwrap().trace();
    assert_eq!(lhs, rhs);
}

#[test]
fn eq4_7_trace_specification() {
    // Ξ_G = ¼Γ(AAᵀAAᵀ) − ¼Γ(AAᵀ∘AAᵀ) − (¼Γ(JAAᵀ) − ¼Γ(AAᵀ)).
    let g = g();
    assert_eq!(count_dense_formula(&g), count_brute_force(&g));
}

#[test]
fn eq5_6_wedge_count() {
    // W = ½Σ_ij β_ij − ½Γ(B) = ½Γ(JBᵀ) − ½Γ(B), and equals the
    // degree-formula total Σ_v C(deg v, 2).
    let g = g();
    let b = wedge_matrix(&g);
    let w = (b.sum() - b.trace()) / 2;
    assert_eq!(w, g.wedges_through_v2());
    assert_eq!(w, bfly::core::spec::wedge_count_v1_endpoints(&g));
}

#[test]
fn eq8_9_10_categories() {
    // Ξ_G = Ξ_L + Ξ_LR + Ξ_R, with each category given by the eq. 9/10
    // trace forms — dense and sparse evaluations agree at every split.
    let g = g();
    let total = count_brute_force(&g);
    for split in 0..=g.nv2() {
        let c = count_categories(&g, Side::V2, split);
        assert_eq!(c.total(), total, "eq. 8 at split {split}");
        assert_eq!(
            count_dense_partitioned(&g, split),
            c,
            "eq. 9/10 at split {split}"
        );
    }
}

#[test]
fn eq15_18_update_statement() {
    // The derived update (eq. 18), executed literally per iteration,
    // maintains the loop invariant (eqs. 15–16 are its before/after
    // states) — checked for all eight derived algorithms, plus the
    // literal executors which evaluate eq. 18's two terms as matrices.
    let g = g();
    for inv in Invariant::ALL {
        bfly::core::family::verify_loop_invariant(&g, inv).unwrap();
        assert_eq!(count_literal(&g, inv), count_brute_force(&g), "{inv}");
        // Spot-check an intermediate specified state is within range.
        let n = g.nvertices(inv.partitioned_side());
        let mid = invariant_specified_value(&g, inv, n / 2);
        assert!(mid <= count_brute_force(&g));
    }
}

#[test]
fn eq19_20_tip_scores() {
    // s = ¼DIAG(BB − B∘B − JB + B) (eq. 19); m = s ≥ k (eq. 20).
    // The paper's s is half the per-vertex butterfly count (documented
    // normalisation); the executable relationship is 4s = 2b and Σs = Ξ.
    let g = g();
    let four_s = eq19_diagonal_times4(&g);
    let b = butterflies_per_vertex(&g, Side::V1);
    for (s4, bi) in four_s.iter().zip(&b) {
        assert_eq!(*s4, 2 * bi);
    }
    assert_eq!(four_s.iter().sum::<u64>(), 4 * count_brute_force(&g));
}

#[test]
fn eq21_22_tip_masking() {
    // A₁ = A₀ ∘ M iterated to a fixed point — the matrix-formulation
    // k-tip equals the wedge-expansion k-tip for every k.
    let g = g();
    for k in [1u64, 2, 4] {
        let a = k_tip(&g, Side::V1, k);
        let b = k_tip_matrix(&g, Side::V1, k);
        assert_eq!(a.keep, b.keep, "k = {k}");
    }
}

#[test]
fn eq23_24_edge_support() {
    // supp(u,v) = Σ_{w∈N(v)} |N(u)∩N(w)| − |N(u)| − |N(v)| + 1 (eq. 23),
    // equivalently e_uᵀA₀A₀ᵀA₀e_v − e_uᵀA₀A₀ᵀe_u − e_vᵀA₀ᵀA₀e_v + 1
    // (eq. 24) — check both against a direct butterfly-membership count.
    let g = g();
    let supports = edge_supports(&g);
    // Direct: for each edge, count butterflies containing it by brute
    // force over partner pairs.
    let mut direct = Vec::with_capacity(g.nedges());
    for (u, v) in g.edges() {
        let mut s = 0u64;
        for &w in g.neighbors_v2(v as usize) {
            if w == u {
                continue;
            }
            for &x in g.neighbors_v1(u as usize) {
                if x != v && g.has_edge(w, x) {
                    s += 1;
                }
            }
        }
        direct.push(s);
    }
    assert_eq!(supports, direct);
}

#[test]
fn eq25_support_matrix() {
    // S_w = (A₀A₀ᵀA₀ − diag(A₀A₀ᵀ)1ᵀ − 1diag(A₀ᵀA₀)ᵀ + J) ∘ A₀.
    let g = g();
    let algebraic = edge_supports_algebraic(&g);
    assert_eq!(algebraic, edge_supports(&g));
    // The matrix shaping preserves A's pattern exactly.
    let sw = support_matrix(&g, &algebraic);
    assert_eq!(sw.pattern(), g.biadjacency().clone());
}

#[test]
fn eq26_27_wing_masking() {
    // M = S_w ≥ k; A₁ = A₀ ∘ M, iterated — matrix and wedge k-wing agree.
    let g = g();
    for k in [1u64, 2, 3] {
        let a = k_wing(&g, k);
        let b = k_wing_matrix(&g, k);
        assert_eq!(a.keep, b.keep, "k = {k}");
        // Fixed point: all surviving supports ≥ k.
        for s in edge_supports(&a.subgraph) {
            assert!(s >= k);
        }
    }
}

#[test]
fn figs_4_and_5_loop_invariants() {
    // The four V2 invariants (Fig. 4) and four V1 invariants (Fig. 5),
    // via their executable partial sums at every split point.
    let g = g();
    let total = count_brute_force(&g);
    for side in [Side::V2, Side::V1] {
        let n = g.nvertices(side);
        for split in 0..=n {
            let st = bfly::core::partitioned::loop_invariant_states(&g, side, split);
            // Complementarity relations from Figs. 4/5.
            assert_eq!(st[0] + st[2], total);
            assert_eq!(st[1] + st[3], total);
        }
    }
}

#[test]
fn figs_6_and_7_algorithms() {
    // All eight printed algorithms (engine + literal) compute Ξ_G.
    let g = g();
    let want = count_brute_force(&g);
    for inv in Invariant::ALL {
        assert_eq!(count(&g, inv), want, "{inv} engine");
        assert_eq!(count_literal(&g, inv), want, "{inv} literal");
    }
}

#[test]
fn fig_8_lookahead_tip() {
    let g = g();
    for k in [1u64, 3] {
        assert_eq!(
            bfly::core::peel::k_tip_lookahead(&g, Side::V1, k).keep,
            k_tip(&g, Side::V1, k).keep,
            "k = {k}"
        );
    }
}
