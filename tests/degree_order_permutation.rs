//! Permutation invariance of every counting output: relabeling one side
//! by degree (the adaptive engine's degree-ordered execution mode) is an
//! isomorphism, so totals are identical, per-vertex tip counts are the
//! same multiset — equal element-wise after the inverse mapping — and
//! per-edge wing supports transport along the edge correspondence.

use bfly::core::adaptive::butterflies_per_vertex_degree_ordered;
use bfly::core::edge_support::edge_supports;
use bfly::core::testkit::{arb_family_graph, fixture_battery};
use bfly::core::vertex_counts::butterflies_per_vertex;
use bfly::core::{count, count_brute_force, Invariant};
use bfly::graph::ordering::{degree_ascending, degree_descending, invert_permutation, relabel};
use bfly::graph::{BipartiteGraph, Side};
use proptest::prelude::*;
use std::collections::HashMap;

/// Check every output of interest transports through `relabel(g, side,
/// perm)` with `perm[new] = old`.
fn assert_permutation_invariant(g: &BipartiteGraph, side: Side, perm: &[u32], label: &str) {
    let h = relabel(g, side, perm);
    let want = count_brute_force(g);

    // Totals: all eight invariants on the renumbered graph.
    assert_eq!(count_brute_force(&h), want, "{label}: brute force");
    for inv in Invariant::ALL {
        assert_eq!(count(&h, inv), want, "{label}: {inv}");
    }

    // Per-vertex tip counts: h's vertex `new` is g's vertex `perm[new]`.
    let inv_perm = invert_permutation(perm);
    let b_g = butterflies_per_vertex(g, side);
    let b_h = butterflies_per_vertex(&h, side);
    for old in 0..b_g.len() {
        assert_eq!(
            b_h[inv_perm[old] as usize], b_g[old],
            "{label}: per-vertex count of old vertex {old}"
        );
    }
    // The untouched side's counts are identical as-is.
    let other = match side {
        Side::V1 => Side::V2,
        Side::V2 => Side::V1,
    };
    assert_eq!(
        butterflies_per_vertex(&h, other),
        butterflies_per_vertex(g, other),
        "{label}: untouched side"
    );

    // Per-edge wing supports: map h's edges back through the permutation
    // and compare against g's supports in g's edge order.
    let s_g = edge_supports(g);
    let s_h = edge_supports(&h);
    let index_g: HashMap<(u32, u32), usize> = g.edges().enumerate().map(|(i, e)| (e, i)).collect();
    for (i_h, (a, b)) in h.edges().enumerate() {
        let orig = match side {
            Side::V1 => (perm[a as usize], b),
            Side::V2 => (a, perm[b as usize]),
        };
        let i_g = *index_g
            .get(&orig)
            .unwrap_or_else(|| panic!("{label}: edge {orig:?} missing from original"));
        assert_eq!(
            s_h[i_h], s_g[i_g],
            "{label}: support of edge {orig:?} (h index {i_h}, g index {i_g})"
        );
    }
}

#[test]
fn degree_orderings_preserve_everything_on_fixtures() {
    for (name, g) in fixture_battery() {
        for side in [Side::V1, Side::V2] {
            for (dir, perm) in [
                ("desc", degree_descending(&g, side)),
                ("asc", degree_ascending(&g, side)),
            ] {
                assert_permutation_invariant(&g, side, &perm, &format!("{name}/{side:?}/{dir}"));
            }
        }
    }
}

#[test]
fn degree_ordered_helper_maps_counts_back_on_fixtures() {
    // The adaptive engine's own mapped-back per-vertex path: counting on
    // the descending-degree renumbering and applying the inverse mapping
    // must reproduce the original-order counts exactly.
    for (name, g) in fixture_battery() {
        for side in [Side::V1, Side::V2] {
            assert_eq!(
                butterflies_per_vertex_degree_ordered(&g, side),
                butterflies_per_vertex(&g, side),
                "{name}/{side:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Permutation invariance across all generator regimes.
    #[test]
    fn degree_relabel_is_invariant_on_generated_graphs(g in arb_family_graph()) {
        let want = count_brute_force(&g);
        for side in [Side::V1, Side::V2] {
            let perm = degree_descending(&g, side);
            let h = relabel(&g, side, &perm);
            prop_assert_eq!(count_brute_force(&h), want);
            prop_assert_eq!(count(&h, Invariant::Inv1), want);
            prop_assert_eq!(count(&h, Invariant::Inv6), want);
            prop_assert_eq!(
                butterflies_per_vertex_degree_ordered(&g, side),
                butterflies_per_vertex(&g, side)
            );
        }
    }
}
