//! Differential harness for the adaptive front-end: on every generated
//! graph — uniform, power-law-ish skewed, star-heavy, near-empty, and
//! complete-biclique, plus the named fixture battery — the adaptively
//! selected plan must produce exactly the count of the slow,
//! obviously-correct baselines and of all eight fixed invariants, in
//! every execution mode. This is the archetype harness later fast paths
//! extend: add the new path to `assert_adaptive_agrees` and every regime
//! pins it.

use bfly::core::adaptive::{
    count_adaptive, count_adaptive_parallel, execute_plan, select_plan, ExecMode, GraphProfile,
    Member, Plan,
};
use bfly::core::baseline::{count_hash_aggregation, count_vertex_priority};
use bfly::core::family::{count_priority, count_ranked};
use bfly::core::testkit::{arb_family_graph, fixture_battery};
use bfly::core::{count, count_brute_force, count_via_spgemm, Invariant};
use bfly::graph::BipartiteGraph;
use proptest::prelude::*;

/// The full differential battery on one graph: spec counters, baselines,
/// all eight fixed invariants, and the adaptive plan in sequential,
/// parallel, and every forced execution mode.
fn assert_adaptive_agrees(g: &BipartiteGraph, label: &str) {
    let want = count_brute_force(g);
    assert_eq!(count_via_spgemm(g), want, "{label}: spgemm");
    assert_eq!(count_hash_aggregation(g), want, "{label}: hash baseline");
    assert_eq!(count_vertex_priority(g), want, "{label}: vertex priority");
    assert_eq!(count_priority(g), want, "{label}: priority kernel");
    assert_eq!(count_ranked(g), want, "{label}: ranked kernel");
    for inv in Invariant::ALL {
        assert_eq!(count(g, inv), want, "{label}: {inv}");
    }
    let (xi, plan) = count_adaptive(g);
    assert_eq!(xi, want, "{label}: adaptive (plan {plan:?})");
    let (xi_par, plan_par) = count_adaptive_parallel(g);
    assert_eq!(
        xi_par, want,
        "{label}: adaptive parallel (plan {plan_par:?})"
    );
    // The chosen side must be the one the cost model scores cheaper.
    assert!(
        plan.est_work <= plan.est_work_alt,
        "{label}: plan picked the more expensive side: {plan:?}"
    );
    // Force every member × execution mode × degree-ordering combination:
    // re-association, renumbering, the global-order kernels, and the
    // chunked/bucketed parallel shapes never change the total.
    for member in [
        Member::Fixed(plan.invariant),
        Member::Priority,
        Member::Ranked,
    ] {
        for mode in [
            ExecMode::Flat,
            ExecMode::Blocked { block_size: 8 },
            ExecMode::Parallel { chunks: 3 },
        ] {
            for degree_ordered in [false, true] {
                let forced = Plan {
                    member,
                    invariant: plan.invariant,
                    degree_ordered,
                    mode,
                    est_work: plan.est_work,
                    est_work_alt: plan.est_work_alt,
                };
                assert_eq!(execute_plan(g, &forced), want, "{label}: forced {forced:?}");
            }
        }
    }
}

#[test]
fn adaptive_agrees_on_fixture_battery() {
    for (name, g) in fixture_battery() {
        assert_adaptive_agrees(&g, &name);
    }
}

#[test]
fn plan_is_deterministic_per_graph() {
    for (name, g) in fixture_battery() {
        let p = GraphProfile::compute(&g);
        assert_eq!(
            select_plan(&p, false, 0),
            select_plan(&p, false, 0),
            "{name}"
        );
        let (_, plan_a) = count_adaptive(&g);
        let (_, plan_b) = count_adaptive(&g);
        assert_eq!(plan_a, plan_b, "{name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The archetype property: adaptive equals the definition on graphs
    /// drawn from all five regime families.
    #[test]
    fn adaptive_equals_baseline_on_generated_graphs(g in arb_family_graph()) {
        let want = count_brute_force(&g);
        let (xi, _) = count_adaptive(&g);
        prop_assert_eq!(xi, want);
        let (xi_par, _) = count_adaptive_parallel(&g);
        prop_assert_eq!(xi_par, want);
        for inv in Invariant::ALL {
            prop_assert_eq!(count(&g, inv), want);
        }
        prop_assert_eq!(count_priority(&g), want);
        prop_assert_eq!(count_ranked(&g), want);
        for chunks in [2usize, 4] {
            prop_assert_eq!(bfly::core::count_priority_parallel(&g, chunks), want);
            prop_assert_eq!(bfly::core::count_ranked_parallel(&g, chunks), want);
        }
    }

    /// The wedge-work estimates the cost model ranks sides by are exact.
    #[test]
    fn profile_work_estimates_are_exact(g in arb_family_graph()) {
        let p = GraphProfile::compute(&g);
        prop_assert_eq!(p.wedges_v1, g.wedges_through_v1());
        prop_assert_eq!(p.wedges_v2, g.wedges_through_v2());
        let plan = select_plan(&p, false, 0);
        prop_assert!(plan.est_work <= plan.est_work_alt);
        match plan.member {
            Member::Fixed(_) => prop_assert_eq!(
                plan.est_work + plan.est_work_alt,
                p.wedges_v1 + p.wedges_v2
            ),
            // Global-order members carry the exact priority total, with
            // the displaced best fixed side as the alternative.
            Member::Priority | Member::Ranked => {
                prop_assert_eq!(plan.est_work, p.wedges_priority);
                prop_assert_eq!(plan.est_work_alt, p.wedges_v1.min(p.wedges_v2));
            }
        }
    }
}
