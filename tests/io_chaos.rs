//! I/O chaos battery: atomic conversion, transient-fault retries, and
//! retry exhaustion through the positioned-read path.
//!
//! Conversion and `.bfly` writing go through a temp-file → fsync →
//! rename protocol, so a crash or error mid-convert can never leave a
//! torn file at the destination. The `BFLY_FAULT_READ_*` hooks inject
//! deterministic faults into `SegmentedGraph`'s positioned reads to
//! drive the `RetryPolicy` layer end to end. Environment variables are
//! process-global, so every env-touching test here serialises on one
//! lock (other test files are separate processes).

use std::sync::Mutex;

use bfly::core::telemetry::InMemoryRecorder;
use bfly::core::testkit::fixture_battery;
use bfly::core::{count_adaptive, count_segmented, ResourceBudget};
use bfly::graph::io::IoError;
use bfly::graph::{
    convert_to_bfly, is_bfly_file, read_bfly_file, write_bfly_file, SegmentedGraph, TextFormat,
};

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn env_guard() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bfly-iochaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn biggest_fixture() -> bfly::graph::BipartiteGraph {
    fixture_battery()
        .into_iter()
        .max_by_key(|(_, g)| g.nedges())
        .unwrap()
        .1
}

#[test]
fn failed_convert_never_touches_the_destination() {
    let dir = tmp_dir("convert");
    let g = biggest_fixture();
    let want = count_adaptive(&g).0;

    // Seed the destination with a valid .bfly from an earlier "run".
    let dest = dir.join("g.bfly");
    write_bfly_file(&g, &dest).unwrap();
    assert!(is_bfly_file(&dest));

    // A conversion that dies mid-parse (bad edge line after good ones)
    // must leave the old destination bitwise intact and no stray temps.
    let bad_input = dir.join("bad.tsv");
    std::fs::write(&bad_input, "0\t0\n1\t1\nnot-an-edge\n").unwrap();
    let before = std::fs::read(&dest).unwrap();
    let err = convert_to_bfly(&bad_input, TextFormat::EdgeList, &dest).unwrap_err();
    assert!(matches!(err, IoError::Parse { .. }), "got {err:?}");
    assert_eq!(std::fs::read(&dest).unwrap(), before, "destination torn");
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().to_string())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");

    // The still-valid old file keeps counting correctly.
    assert_eq!(count_adaptive(&read_bfly_file(&dest).unwrap()).0, want);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn convert_recovers_after_a_simulated_crash_mid_rename() {
    // A previous convert that died before its final rename leaves
    // `<dest>.tmp` garbage behind; rerunning the convert must succeed
    // and the destination must be the fresh, valid file.
    let dir = tmp_dir("crash");
    let g = biggest_fixture();
    let want = count_adaptive(&g).0;

    let input = dir.join("g.tsv");
    let mut text = String::new();
    for u in 0..g.nv1() {
        for &v in g.neighbors_v1(u) {
            text.push_str(&format!("{u}\t{v}\n"));
        }
    }
    std::fs::write(&input, text).unwrap();

    let dest = dir.join("g.bfly");
    std::fs::write(
        format!("{}.tmp", dest.display()),
        b"torn garbage from a crash",
    )
    .unwrap();
    let stats = convert_to_bfly(&input, TextFormat::EdgeList, &dest).unwrap();
    assert_eq!(stats.nedges as usize, g.nedges());
    assert!(is_bfly_file(&dest));
    assert_eq!(count_adaptive(&read_bfly_file(&dest).unwrap()).0, want);
    assert!(
        !std::path::Path::new(&format!("{}.tmp", dest.display())).exists(),
        "stale .tmp survived the rerun"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn write_bfly_file_is_atomic_on_success() {
    let dir = tmp_dir("write");
    let g = biggest_fixture();
    let dest = dir.join("g.bfly");
    write_bfly_file(&g, &dest).unwrap();
    assert!(is_bfly_file(&dest));
    assert!(
        !std::path::Path::new(&format!("{}.tmp", dest.display())).exists(),
        ".tmp left behind after successful write"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_read_faults_are_retried_to_an_exact_count() {
    let _guard = env_guard();
    let dir = tmp_dir("transient");
    let g = biggest_fixture();
    let want = count_adaptive(&g).0;
    let path = dir.join("g.bfly");
    write_bfly_file(&g, &path).unwrap();

    // Interrupted faults on the first 3 read attempts: the retry layer
    // absorbs them (default policy allows 4 attempts per read) and the
    // count is exact, with the retries visible in the stats.
    std::env::set_var("BFLY_FAULT_READ_TRANSIENT", "3");
    let sg = SegmentedGraph::open(&path).unwrap();
    std::env::remove_var("BFLY_FAULT_READ_TRANSIENT");
    assert_eq!(count_segmented(&sg).unwrap(), want);
    let (retries, giveups) = sg.retry_stats();
    assert_eq!(retries, 3);
    assert_eq!(giveups, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retry_exhaustion_names_the_attempt_count_and_keeps_the_error_kind() {
    let _guard = env_guard();
    let dir = tmp_dir("exhaust");
    let g = biggest_fixture();
    let path = dir.join("g.bfly");
    write_bfly_file(&g, &path).unwrap();

    // More transient faults than the policy's attempt budget: the read
    // gives up, and the error says how hard it tried.
    std::env::set_var("BFLY_FAULT_READ_TRANSIENT", "1000");
    let sg = SegmentedGraph::open(&path).unwrap();
    std::env::remove_var("BFLY_FAULT_READ_TRANSIENT");
    let err = count_segmented(&sg).unwrap_err();
    match &err {
        bfly::core::BflyError::Io(IoError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::Interrupted);
            assert!(
                e.to_string().contains("giving up after 4 attempts"),
                "got: {e}"
            );
        }
        other => panic!("expected runtime io error, got {other:?}"),
    }
    let (_, giveups) = sg.retry_stats();
    assert!(giveups >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hard_read_faults_fail_fast_without_retries() {
    let _guard = env_guard();
    let dir = tmp_dir("hard");
    let g = biggest_fixture();
    let path = dir.join("g.bfly");
    write_bfly_file(&g, &path).unwrap();

    std::env::set_var("BFLY_FAULT_READ_ERROR_AT", "1");
    let sg = SegmentedGraph::open(&path).unwrap();
    std::env::remove_var("BFLY_FAULT_READ_ERROR_AT");
    let err = count_segmented(&sg).unwrap_err();
    match &err {
        bfly::core::BflyError::Io(IoError::Io(e)) => {
            assert!(e.to_string().contains("injected hard fault"), "got: {e}");
        }
        other => panic!("expected runtime io error, got {other:?}"),
    }
    // A permanent error never burns retry budget.
    let (retries, giveups) = sg.retry_stats();
    assert_eq!(retries, 0);
    assert_eq!(giveups, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointed_count_rides_out_transient_faults() {
    // Retries + checkpointing compose: a run whose reads flake still
    // produces exact durable shards.
    let _guard = env_guard();
    let dir = tmp_dir("compose");
    let g = biggest_fixture();
    let want = count_adaptive(&g).0;
    let path = dir.join("g.bfly");
    write_bfly_file(&g, &path).unwrap();

    std::env::set_var("BFLY_FAULT_READ_TRANSIENT", "2");
    let sg = SegmentedGraph::open(&path).unwrap();
    std::env::remove_var("BFLY_FAULT_READ_TRANSIENT");
    let cfg = bfly::core::CheckpointConfig::new(dir.join("ck"));
    let r = bfly::core::count_segmented_checkpointed_recorded(
        &sg,
        Some(4),
        None,
        &ResourceBudget::unlimited(),
        Some(&cfg),
        &mut InMemoryRecorder::new(),
    )
    .unwrap();
    assert!(r.complete);
    assert_eq!(r.value.0, want);
    let (retries, _) = sg.retry_stats();
    assert_eq!(retries, 2);
    let _ = std::fs::remove_dir_all(&dir);
}
