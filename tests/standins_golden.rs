//! Golden regression tests for the KONECT stand-ins.
//!
//! The stand-ins are the measurement substrate for every figure
//! reproduction, so their generation must stay bit-stable: a silent change
//! to the generator, the RNG plumbing, or the calibrated exponents would
//! quietly invalidate EXPERIMENTS.md. These tests pin the exact shapes and
//! butterfly counts at a fixed small scale (0.02), cross-checked through
//! two different counting paths.

use bfly::core::baseline::count_vertex_priority;
use bfly::core::{count, Invariant};
use bfly::graph::StandIn;

/// (dataset, |V1|, |V2|, |E|, Ξ) at scale 0.02 with the calibrated
/// exponents and per-dataset seeds.
const GOLDEN: [(StandIn, usize, usize, usize, u64); 5] = [
    (StandIn::ArxivCondMat, 334, 440, 1_171, 932),
    (StandIn::Producers, 976, 2_776, 4_145, 3_006),
    (StandIn::RecordLabels, 3_366, 368, 4_665, 10_419),
    (StandIn::Occupations, 2_551, 2_034, 5_018, 29_041),
    (StandIn::GitHub, 1_130, 2_417, 8_804, 132_134),
];

#[test]
fn stand_in_generation_is_pinned() {
    for (d, v1, v2, e, xi) in GOLDEN {
        let g = d.generate_scaled(0.02);
        assert_eq!(g.nv1(), v1, "{d:?} |V1|");
        assert_eq!(g.nv2(), v2, "{d:?} |V2|");
        assert_eq!(g.nedges(), e, "{d:?} |E|");
        let got = count(&g, Invariant::Inv2);
        assert_eq!(got, xi, "{d:?} butterfly count drifted");
        assert_eq!(count_vertex_priority(&g), xi, "{d:?} cross-check");
    }
}

#[test]
fn full_scale_specs_match_fig9() {
    // The table printed in the paper's Fig. 9 — shape parameters must
    // never drift from it.
    let expect = [
        ("arXiv cond-mat", 16_726, 22_015, 58_595, 70_549u64),
        ("Producers", 48_833, 138_844, 207_268, 266_983),
        ("Record Labels", 168_337, 18_421, 233_286, 1_086_886),
        ("Occupations", 127_577, 101_730, 250_945, 24_509_245),
        ("GitHub", 56_519, 120_867, 440_237, 50_894_505),
    ];
    for (d, (name, v1, v2, e, xi)) in StandIn::ALL.into_iter().zip(expect) {
        let s = d.spec();
        assert_eq!(s.name, name);
        assert_eq!((s.v1, s.v2, s.edges), (v1, v2, e));
        assert_eq!(s.paper_butterflies, xi);
    }
}

#[test]
fn count_auto_picks_smaller_side_per_dataset() {
    use bfly::core::count_auto;
    use bfly::graph::Side;
    for d in StandIn::ALL {
        let g = d.generate_scaled(0.02);
        let (xi, inv) = count_auto(&g);
        assert_eq!(xi, count(&g, Invariant::Inv1));
        let expect = if g.nv2() <= g.nv1() {
            Side::V2
        } else {
            Side::V1
        };
        assert_eq!(inv.partitioned_side(), expect, "{d:?}");
    }
}

#[test]
fn butterfly_density_ordering_matches_paper() {
    // Fig. 9's qualitative ordering — GitHub ≫ Occupations ≫ Record
    // Labels ≫ Producers / arXiv — must hold for the stand-ins at any
    // scale, since the whole §V narrative depends on it.
    let counts: Vec<u64> = StandIn::ALL
        .iter()
        .map(|d| {
            let g = d.generate_scaled(0.02);
            count(&g, Invariant::Inv2)
        })
        .collect();
    let (arxiv, _producers, labels, occupations, github) =
        (counts[0], counts[1], counts[2], counts[3], counts[4]);
    assert!(github > occupations);
    assert!(occupations > labels);
    assert!(labels > arxiv);
}
