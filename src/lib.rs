//! # bfly — Families of Butterfly Counting Algorithms for Bipartite Graphs
//!
//! Umbrella crate re-exporting the whole workspace:
//!
//! * [`sparse`] — the sparse/dense linear-algebra substrate ([`bfly_sparse`]).
//! * [`graph`] — bipartite graphs, I/O, generators, statistics ([`bfly_graph`]).
//! * [`core`] — the paper's contribution: the eight-invariant counting
//!   family, algebraic specification counters, k-tip/k-wing peeling,
//!   decompositions, baselines, and metrics ([`bfly_core`]).
//!
//! ```
//! use bfly::graph::BipartiteGraph;
//! use bfly::core::{count, Invariant};
//!
//! // The butterfly of Fig. 1: two V1 vertices sharing two V2 neighbours.
//! let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
//! assert_eq!(count(&g, Invariant::Inv2), 1);
//! ```

pub use bfly_core as core;
pub use bfly_graph as graph;
pub use bfly_sparse as sparse;
